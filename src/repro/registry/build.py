"""Constructing the curated registry from demos and corpus programs.

The per-family builders here are the reusable machinery: given any
:class:`~repro.progmodel.corpus.SeededProgram` and one of its
:class:`~repro.progmodel.bugs.BugSpec` entries, they derive
deterministic triggering tests (searching input completions, schedule
pick prefixes, and fault occurrence indices as the family requires) and
the family's known patch. :func:`build_registry` applies them to the
hand-written demos plus one generated program per family.

A bug whose trigger cannot be made to reproduce raises
:class:`UnreproducibleBugError` — the registry never contains silently
non-triggering entries, and the property tests lean on exactly that
guarantee.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SoftBorgError
from repro.fixes.fix import Fix
from repro.fixes.patches import SiteRecoveryFix
from repro.progmodel.bugs import BugKind, BugSpec
from repro.progmodel.corpus import (
    CorpusConfig, SeededProgram, generate_program, make_crash_demo,
    make_deadlock_demo, make_leak_demo, make_prio_demo,
    make_provenance_demo, make_race_demo, make_toctou_demo,
    make_wakeup_demo,
)
from repro.progmodel.interpreter import (
    Environment, ExecutionLimits, ExecutionResult, FaultPlan, Interpreter,
    SyscallEvent,
)
from repro.progmodel.ir import (
    Assign, Branch, Const, Jump, LoadGlobal, Program, Syscall,
)
from repro.registry.model import (
    FAMILY_CODES, BugRegistry, RegisteredBug, TriggeringTest, family_of,
)
from repro.registry.patches import (
    ForceBranchFix, GuardBlocksWithLockFix, ReorderLocksFix,
    RewriteBlockFix, SpinLockPollFix,
)
from repro.sched.scheduler import FixedScheduler, RoundRobinScheduler

__all__ = [
    "UnreproducibleBugError", "build_registry",
    "triggering_tests_for", "known_patch_for",
    "PRIO_PRIORITIES", "PRIO_ARRIVALS",
]

MAX_STEPS = 4000

#: Canonical priority-inversion schedule: main is high priority but
#: arrives after low has taken the lock; mid arrives last and spins.
PRIO_PRIORITIES: Dict[int, int] = {0: 3, 1: 2, 2: 1}
PRIO_ARRIVALS: Dict[int, int] = {0: 6, 1: 8, 2: 0}

#: How many input completions / schedule prefixes the searches try
#: before declaring a bug unreproducible.
_MAX_COMPLETIONS = 4096
_MAX_PICK_PREFIX = 400


class UnreproducibleBugError(SoftBorgError):
    """No deterministic triggering test could be derived for a bug."""


# --------------------------------------------------------------------------
# Deterministic execution helpers
# --------------------------------------------------------------------------

def _run(program: Program, inputs: Dict[str, int], scheduler=None,
         fault_plan: Optional[Dict[int, int]] = None) -> ExecutionResult:
    environment = Environment(
        fault_plan=FaultPlan(dict(fault_plan)) if fault_plan else None)
    return Interpreter(program, limits=ExecutionLimits(max_steps=MAX_STEPS)) \
        .run(dict(inputs), environment=environment,
             scheduler=scheduler or RoundRobinScheduler())


def _completions(program: Program, spec: BugSpec) -> Iterable[Dict[str, int]]:
    """All full input vectors consistent with the spec's trigger, the
    trigger-satisfying minima first, then lexicographic over the free
    inputs (deterministic)."""
    names = sorted(program.inputs)
    free = [n for n in names if n not in spec.trigger]
    domains = [range(program.inputs[n][0], program.inputs[n][1] + 1)
               for n in free]
    count = 0
    for combo in itertools.product(*domains):
        if count >= _MAX_COMPLETIONS:
            return
        count += 1
        vector = dict(spec.trigger)
        vector.update(zip(free, combo))
        yield vector


def _find_inputs(program: Program, spec: BugSpec, expect_ok: bool = False,
                 scheduler_factory=None,
                 fault_plan: Optional[Dict[int, int]] = None,
                 ) -> Optional[Dict[str, int]]:
    """First input completion that reproduces the bug (or, with
    ``expect_ok``, completes OK) under the given schedule/faults."""
    for vector in _completions(program, spec):
        factory = scheduler_factory or RoundRobinScheduler
        result = _run(program, vector, scheduler=factory(),
                      fault_plan=fault_plan)
        if expect_ok:
            if result.outcome.value == "ok":
                return vector
        elif spec.matches_result(result.outcome,
                                 result.failure.message if result.failure
                                 else None,
                                 result.failure.block if result.failure
                                 else None):
            return vector
    return None


def _ok_vector(program: Program, spec: BugSpec,
               scheduler_factory=None) -> Optional[Dict[str, int]]:
    """A full vector that *avoids* the bug: search off-trigger values
    first (flip each trigger input), then any completion that runs OK."""
    names = sorted(program.inputs)
    for flip in sorted(spec.trigger):
        lo, hi = program.inputs[flip]
        for value in range(lo, hi + 1):
            if value == spec.trigger[flip]:
                continue
            vector = {n: spec.trigger.get(n, program.inputs[n][0])
                      for n in names}
            vector[flip] = value
            factory = scheduler_factory or RoundRobinScheduler
            if _run(program, vector,
                    scheduler=factory()).outcome.value == "ok":
                return vector
    # Trigger-free bugs (race): fall back to the domain minima.
    vector = {n: program.inputs[n][0] for n in names}
    factory = scheduler_factory or RoundRobinScheduler
    if _run(program, vector, scheduler=factory()).outcome.value == "ok":
        return vector
    return None


def _find_pick_prefix(program: Program, inputs: Dict[str, int],
                      spec: BugSpec, tail: List[int],
                      ) -> Optional[Tuple[int, ...]]:
    """Search fixed-schedule prefixes ``[0]*k + tail`` for one that
    reproduces a schedule-dependent bug."""
    for k in range(_MAX_PICK_PREFIX):
        picks = [0] * k + tail
        result = _run(program, inputs, scheduler=FixedScheduler(picks))
        if spec.matches_result(result.outcome,
                               result.failure.message if result.failure
                               else None,
                               result.failure.block if result.failure
                               else None):
            return tuple(picks)
    return None


def _find_fault_occurrence(program: Program, inputs: Dict[str, int],
                           spec: BugSpec) -> Optional[int]:
    """Which syscall occurrence must fail to trip a fault-dependent bug:
    sweep every syscall of the fault-free run."""
    baseline = _run(program, inputs)
    n_syscalls = sum(1 for e in baseline.events
                     if isinstance(e, SyscallEvent))
    for occurrence in range(n_syscalls + 1):
        result = _run(program, inputs, fault_plan={occurrence: -1})
        if result.failure and result.failure.message == spec.message:
            return occurrence
    return None


# --------------------------------------------------------------------------
# Per-family triggering tests
# --------------------------------------------------------------------------

def triggering_tests_for(seeded: SeededProgram,
                         spec: BugSpec) -> List[TriggeringTest]:
    """Derive deterministic triggering + regression tests for one bug.

    Raises :class:`UnreproducibleBugError` when no deterministic
    reproduction exists within the bounded searches — a registry entry
    is never silently non-triggering.
    """
    program = seeded.program
    bug_id = spec.bug_id
    kind = spec.kind
    tests: List[TriggeringTest] = []

    if kind in (BugKind.CRASH, BugKind.ASSERT, BugKind.LEAK,
                BugKind.PROVENANCE):
        inputs = _find_inputs(program, spec)
        if inputs is None:
            raise UnreproducibleBugError(
                f"{bug_id}: no input completion reaches the bug site")
        tests.append(TriggeringTest(
            test_id=f"{bug_id}-t0", inputs=inputs,
            expect="assert" if kind is BugKind.ASSERT else "crash",
            expect_message=spec.message))
    elif kind is BugKind.TOCTOU or kind is BugKind.SHORT_READ:
        found = None
        for inputs in _completions(program, spec):
            occurrence = _find_fault_occurrence(program, inputs, spec)
            if occurrence is not None:
                found = (inputs, occurrence)
                break
        if found is None:
            raise UnreproducibleBugError(
                f"{bug_id}: no fault occurrence trips the bug")
        inputs, occurrence = found
        tests.append(TriggeringTest(
            test_id=f"{bug_id}-t0", inputs=inputs, expect="crash",
            expect_message=spec.message,
            fault_plan={occurrence: -1}))
        # The same inputs without the fault must complete cleanly.
        if _run(program, inputs).outcome.value == "ok":
            tests.append(TriggeringTest(
                test_id=f"{bug_id}-nofault", inputs=inputs, expect="ok"))
    elif kind is BugKind.DEADLOCK:
        found = None
        for inputs in _completions(program, spec):
            result = _run(program, inputs)
            if result.outcome.value == "deadlock":
                found = (inputs, None)
                break
            # Park main right between its two acquisitions, then run the
            # worker into the opposing lock; the round-robin fallback of
            # the fixed scheduler lets the cycle close.
            picks = _find_pick_prefix(program, inputs, spec, [1] * 60)
            if picks is not None:
                found = (inputs, picks)
                break
        if found is None:
            raise UnreproducibleBugError(
                f"{bug_id}: no input/schedule combination deadlocks")
        inputs, picks = found
        tests.append(TriggeringTest(
            test_id=f"{bug_id}-t0", inputs=inputs, expect="deadlock",
            schedule="fixed" if picks else "round-robin",
            schedule_picks=picks or ()))
    elif kind is BugKind.RACE:
        inputs = spec.triggering_inputs(program.inputs)
        picks = _find_pick_prefix(program, inputs, spec, [0, 1] * 80)
        if picks is None:
            raise UnreproducibleBugError(
                f"{bug_id}: no schedule prefix loses an update")
        tests.append(TriggeringTest(
            test_id=f"{bug_id}-t0", inputs=inputs, expect="assert",
            expect_message=spec.message,
            schedule="fixed", schedule_picks=picks))
        # Interleaving-free schedule: main runs alone, then the worker.
        solo = (0,) * 600
        solo_result = _run(program, inputs,
                           scheduler=FixedScheduler(list(solo)))
        if solo_result.outcome.value == "ok":
            tests.append(TriggeringTest(
                test_id=f"{bug_id}-serial", inputs=inputs, expect="ok",
                schedule="fixed", schedule_picks=solo))
    elif kind is BugKind.LOST_WAKEUP:
        found = None
        for inputs in _completions(program, spec):
            picks = _find_pick_prefix(program, inputs, spec, [1] * 60)
            if picks is not None:
                found = (inputs, picks)
                break
        if found is None:
            raise UnreproducibleBugError(
                f"{bug_id}: no pick prefix loses the wakeup")
        inputs, picks = found
        tests.append(TriggeringTest(
            test_id=f"{bug_id}-t0", inputs=inputs, expect="hang",
            expect_site=(spec.site_function, spec.site_block),
            schedule="fixed", schedule_picks=picks))
    elif kind is BugKind.PRIO_INVERSION:
        found = None
        for inputs in _completions(program, spec):
            result = _run(program, inputs,
                          scheduler=_prio_scheduler())
            if spec.matches_result(result.outcome,
                                   result.failure.message if result.failure
                                   else None,
                                   result.failure.block if result.failure
                                   else None):
                found = inputs
                break
        if found is None:
            raise UnreproducibleBugError(
                f"{bug_id}: priority schedule does not starve the holder")
        tests.append(TriggeringTest(
            test_id=f"{bug_id}-t0", inputs=found, expect="hang",
            expect_site=(spec.site_function, spec.site_block),
            schedule="priority",
            priorities=dict(PRIO_PRIORITIES),
            arrivals=dict(PRIO_ARRIVALS)))
        # Same inputs under round-robin complete: the failure is purely
        # a property of the schedule.
        if _run(program, found).outcome.value == "ok":
            tests.append(TriggeringTest(
                test_id=f"{bug_id}-fair", inputs=found, expect="ok"))
    elif kind is BugKind.HANG:
        inputs = _find_inputs(program, spec)
        if inputs is None:
            raise UnreproducibleBugError(
                f"{bug_id}: no input completion reaches the hang site")
        tests.append(TriggeringTest(
            test_id=f"{bug_id}-t0", inputs=inputs, expect="hang",
            expect_site=(spec.site_function, spec.site_block)))
    else:
        raise UnreproducibleBugError(
            f"{bug_id}: unsupported bug kind {kind.value}")

    ok = _ok_vector(program, spec)
    if ok is not None:
        tests.append(TriggeringTest(
            test_id=f"{bug_id}-ok", inputs=ok, expect="ok"))
    return tests


def _prio_scheduler():
    from repro.sched.scheduler import PriorityScheduler
    return PriorityScheduler(priorities=dict(PRIO_PRIORITIES),
                             arrivals=dict(PRIO_ARRIVALS))


# --------------------------------------------------------------------------
# Per-family known patches
# --------------------------------------------------------------------------

def known_patch_for(seeded: SeededProgram,
                    spec: BugSpec) -> Tuple[Fix, Tuple[str, ...]]:
    """The family's known patch and the functions it modifies."""
    program = seeded.program
    kind = spec.kind
    fix_id = f"known-{spec.bug_id}"
    defect_function, defect_block = spec.defect_site

    if kind in (BugKind.CRASH, BugKind.ASSERT, BugKind.HANG,
                BugKind.SHORT_READ):
        fix = SiteRecoveryFix(
            fix_id=fix_id, description="bail out at the failure site",
            target_bug_message=spec.message,
            function=spec.site_function, block=spec.site_block)
        return fix, (spec.site_function,)

    if kind is BugKind.LEAK or kind is BugKind.PROVENANCE:
        fix = ForceBranchFix(
            fix_id=fix_id,
            description=("always close the descriptor"
                         if kind is BugKind.LEAK
                         else "never take the poisoned parse arm"),
            target_bug_message=spec.message,
            function=defect_function, block=defect_block, taken=False)
        return fix, (defect_function,)

    if kind is BugKind.TOCTOU:
        return _toctou_patch(program, spec)

    if kind is BugKind.DEADLOCK:
        # The worker acquires in the opposite order of main; rewrite it
        # to main's (canonical) order.
        fix = ReorderLocksFix(
            fix_id=fix_id,
            description="acquire locks in main's canonical order",
            target_bug_message=spec.message,
            function="worker", block="grab", order=tuple(spec.locks))
        return fix, ("worker",)

    if kind is BugKind.RACE:
        worker_body = _race_worker_body(program)
        fix = GuardBlocksWithLockFix(
            fix_id=fix_id,
            description="serialize the counter updates under one mutex",
            target_bug_message=spec.message,
            lock="cntL",
            sites=((spec.site_function, spec.site_block),
                   ("worker", worker_body)))
        return fix, (spec.site_function, "worker")

    if kind is BugKind.PRIO_INVERSION:
        fix = SpinLockPollFix(
            fix_id=fix_id,
            description="spinner touches the contended lock each pass",
            target_bug_message=spec.message,
            function=spec.site_function, block=spec.site_block,
            lock=spec.locks[0])
        return fix, (spec.site_function,)

    if kind is BugKind.LOST_WAKEUP:
        return _wakeup_patch(program, spec)

    raise UnreproducibleBugError(
        f"{spec.bug_id}: no known patch for kind {kind.value}")


def _toctou_patch(program: Program,
                  spec: BugSpec) -> Tuple[Fix, Tuple[str, ...]]:
    """Rewrite the failure path into a benign fallback read of nothing.

    The structure is recovered from the program: the block branching to
    the boom site is the use site; its fall-through block's jump target
    is the continuation, and its read destination is the fallback var.
    """
    func = program.function(spec.site_function)
    use_block = ok_label = None
    for label, block in func.blocks.items():
        term = block.terminator
        if isinstance(term, Branch) and term.then_block == spec.site_block:
            use_block, ok_label = block, term.else_block
            break
    if use_block is None:
        raise UnreproducibleBugError(
            f"{spec.bug_id}: cannot locate the TOCTOU use site")
    ok_block = func.block(ok_label)
    read_dst = next((i.dst for i in ok_block.instructions
                     if isinstance(i, Syscall)), "rd")
    cont = ok_block.terminator
    if not isinstance(cont, Jump):
        raise UnreproducibleBugError(
            f"{spec.bug_id}: TOCTOU ok-path does not rejoin with a jump")
    fix = RewriteBlockFix(
        fix_id=f"known-{spec.bug_id}",
        description="treat the vanished resource as an empty read",
        target_bug_message=spec.message,
        function=spec.site_function, block=spec.site_block,
        instructions=[Assign(read_dst, Const(0))],
        terminator=Jump(cont.target))
    return fix, (spec.site_function,)


def _wakeup_patch(program: Program,
                  spec: BugSpec) -> Tuple[Fix, Tuple[str, ...]]:
    """The wait loop also re-checks the signal flag it raced against."""
    func = program.function(spec.site_function)
    wait = func.block(spec.site_block)
    term = wait.terminator
    load = next((i for i in wait.instructions
                 if isinstance(i, LoadGlobal)), None)
    if load is None or not isinstance(term, Branch):
        raise UnreproducibleBugError(
            f"{spec.bug_id}: wait site is not a load+branch spin")
    from repro.progmodel.ir import BinOp, Var
    sig_var = "__wsig"
    cond = BinOp("or",
                 BinOp("==", Var(load.dst), Const(1)),
                 BinOp("==", Var(sig_var), Const(1)))
    fix = RewriteBlockFix(
        fix_id=f"known-{spec.bug_id}",
        description="wait loop re-checks the signal flag",
        target_bug_message=spec.message,
        function=spec.site_function, block=spec.site_block,
        instructions=[LoadGlobal(load.dst, load.name),
                      LoadGlobal(sig_var, "g_sig")],
        terminator=Branch(cond, term.then_block, term.else_block))
    return fix, (spec.site_function,)


def _race_worker_body(program: Program) -> str:
    """The worker-side racy block: the one storing to ``g_cnt``."""
    from repro.progmodel.ir import StoreGlobal
    worker = program.function("worker")
    for label, block in worker.blocks.items():
        if any(isinstance(i, StoreGlobal) and i.name == "g_cnt"
               for i in block.instructions):
            return label
    raise UnreproducibleBugError("race worker has no g_cnt store")


# --------------------------------------------------------------------------
# Registry assembly
# --------------------------------------------------------------------------

_DEMOS = {
    "crash": make_crash_demo,
    "deadlock": make_deadlock_demo,
    "race": make_race_demo,
    "leak": make_leak_demo,
    "prio": make_prio_demo,
    "wakeup": make_wakeup_demo,
    "toctou": make_toctou_demo,
    "prov": make_provenance_demo,
}

_GENERATED_KINDS = {
    "crash": BugKind.CRASH,
    "deadlock": BugKind.DEADLOCK,
    "race": BugKind.RACE,
    "leak": BugKind.LEAK,
    "prio": BugKind.PRIO_INVERSION,
    "wakeup": BugKind.LOST_WAKEUP,
    "toctou": BugKind.TOCTOU,
    "prov": BugKind.PROVENANCE,
}

#: How many seed offsets to try per generated entry before giving up
#: (some offsets gate the bug behind an unsatisfiable diamond).
_OFFSET_ATTEMPTS = 12


def _localization_hint(program: Program, spec: BugSpec) -> None:
    """Point legacy-family specs at their input-gated guard decision.

    The execution tree only records tainted branch decisions, so the
    manifestation block itself (a crash/assert site) never appears in
    localization output — the decision that *reaches* it does. Specs
    from the pre-registry families leave the defect site unset; aim them
    at the branch block targeting the site, when one exists in the same
    function (schedule-only bugs may have none; their rank stays None).
    """
    if spec.defect_function or spec.defect_block:
        return
    func = program.function(spec.site_function)
    for label, block in func.blocks.items():
        term = block.terminator
        if (isinstance(term, Branch)
                and spec.site_block in (term.then_block, term.else_block)):
            spec.defect_function = spec.site_function
            spec.defect_block = label
            return


def _register(registry: BugRegistry, family: str, number: int,
              seeded: SeededProgram, spec: BugSpec,
              description: str) -> None:
    _localization_hint(seeded.program, spec)
    tests = triggering_tests_for(seeded, spec)
    patch, modified = known_patch_for(seeded, spec)
    registry.add(RegisteredBug(
        ref=f"{family}/{FAMILY_CODES[family]}-{number}",
        family=family, seeded=seeded, spec=spec, tests=tests,
        patch=patch, modified_functions=modified,
        description=description))


def build_registry(seed: int = 0, generated_per_family: int = 1,
                   config: Optional[CorpusConfig] = None) -> BugRegistry:
    """The curated catalogue: one demo + ``generated_per_family``
    corpus-generated entries per family, all verified to reproduce."""
    registry = BugRegistry()
    config = config or CorpusConfig(
        seed=seed, n_inputs=3, input_domain=6, n_segments=4,
        helper_count=1, syscall_probability=0.15, loop_probability=0.2)
    for family in _DEMOS:
        seeded = _DEMOS[family]()
        _register(registry, family, 1, seeded, seeded.bugs[0],
                  f"hand-written {family} demo")
        kind = _GENERATED_KINDS[family]
        registered = 0
        offset = 0
        attempts = 0
        while (registered < generated_per_family
               and attempts < _OFFSET_ATTEMPTS * generated_per_family):
            attempts += 1
            offset += 1
            seeded = generate_program(
                f"reg_{family}{offset}", config, (kind,),
                seed_offset=offset)
            try:
                _register(registry, family, registered + 2, seeded,
                          seeded.bugs[0],
                          f"generated {family} (offset {offset})")
            except UnreproducibleBugError:
                continue
            registered += 1
        if registered < generated_per_family:
            raise UnreproducibleBugError(
                f"could not generate {generated_per_family} reproducible"
                f" {family} entries in {attempts} attempts")
    return registry
