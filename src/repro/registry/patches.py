"""Known-patch transformations for registered bugs.

Each registered bug carries one of these as its *known patch*: the
minimal, human-reviewed transformation that makes every triggering test
pass without disturbing previously-passing behaviour. They are ordinary
:class:`~repro.fixes.fix.Fix` subclasses, so the registry harness can
push them through :class:`~repro.fixes.repairlab.RepairLab` exactly like
synthesized candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import FixError
from repro.fixes.fix import Fix
from repro.progmodel.ir import (
    Branch, Const, Instruction, Lock, Program, Terminator, Unlock,
)

__all__ = [
    "ForceBranchFix", "RewriteBlockFix", "SpinLockPollFix",
    "ReorderLocksFix", "GuardBlocksWithLockFix",
]


@dataclass
class ForceBranchFix(Fix):
    """Pin one branch to a constant direction.

    The canonical leak patch (always take the close path) and
    provenance patch (never take the poisoned parse arm): the defective
    decision is simply removed from the program.
    """

    function: str = ""
    block: str = ""
    taken: bool = False

    def transform(self, program: Program) -> None:
        func = program.function(self.function)
        block = func.block(self.block)
        term = block.terminator
        if not isinstance(term, Branch):
            raise FixError(
                f"ForceBranchFix target {self.function}/{self.block}"
                " does not end in a branch")
        block.terminator = Branch(Const(1 if self.taken else 0),
                                  term.then_block, term.else_block)


@dataclass
class RewriteBlockFix(Fix):
    """Replace one block's instructions and terminator wholesale.

    Used where the patch is a local rewrite: the TOCTOU failure path
    becomes a benign fallback, the lost-wakeup wait loop learns to also
    check the signal flag it raced against.
    """

    function: str = ""
    block: str = ""
    instructions: List[Instruction] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def transform(self, program: Program) -> None:
        if self.terminator is None:
            raise FixError("RewriteBlockFix needs a terminator")
        func = program.function(self.function)
        block = func.block(self.block)
        block.instructions = list(self.instructions)
        block.terminator = self.terminator


@dataclass
class SpinLockPollFix(Fix):
    """Prepend ``lock; unlock`` to a spin block.

    The priority-inversion patch: the starving spinner must touch the
    contended lock each iteration, so strict-priority scheduling parks
    it behind the holder instead of starving the holder forever — a
    poor man's priority inheritance.
    """

    function: str = ""
    block: str = ""
    lock: str = ""

    def transform(self, program: Program) -> None:
        if not self.lock:
            raise FixError("SpinLockPollFix needs a lock name")
        func = program.function(self.function)
        block = func.block(self.block)
        block.instructions = ([Lock(self.lock), Unlock(self.lock)]
                              + list(block.instructions))


@dataclass
class ReorderLocksFix(Fix):
    """Rewrite a block's lock acquisitions to a canonical order.

    The deadlock patch: both threads then acquire in the same order, so
    the AB/BA cycle cannot form. Unlocks are rewritten to release in
    reverse acquisition order.
    """

    function: str = ""
    block: str = ""
    order: Tuple[str, ...] = ()

    def transform(self, program: Program) -> None:
        func = program.function(self.function)
        block = func.block(self.block)
        locks = [i for i in block.instructions if isinstance(i, Lock)]
        unlocks = [i for i in block.instructions if isinstance(i, Unlock)]
        if len(locks) != len(self.order) or len(unlocks) != len(self.order):
            raise FixError(
                f"ReorderLocksFix expects {len(self.order)} lock/unlock"
                f" pairs in {self.function}/{self.block}")
        acquire = iter(self.order)
        release = iter(reversed(self.order))
        rewritten: List[Instruction] = []
        for instr in block.instructions:
            if isinstance(instr, Lock):
                rewritten.append(Lock(next(acquire)))
            elif isinstance(instr, Unlock):
                rewritten.append(Unlock(next(release)))
            else:
                rewritten.append(instr)
        block.instructions = rewritten


@dataclass
class GuardBlocksWithLockFix(Fix):
    """Wrap each listed block in ``lock ... unlock``.

    The race patch: every unsynchronized read-modify-write section of
    the shared counter becomes atomic under one mutex.
    """

    lock: str = ""
    sites: Tuple[Tuple[str, str], ...] = ()

    def transform(self, program: Program) -> None:
        if not self.lock or not self.sites:
            raise FixError("GuardBlocksWithLockFix needs a lock and sites")
        for function, label in self.sites:
            block = program.function(function).block(label)
            block.instructions = ([Lock(self.lock)]
                                  + list(block.instructions)
                                  + [Unlock(self.lock)])
