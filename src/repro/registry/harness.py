"""Running registered bugs standalone and as hive workloads.

Two execution modes per bug, both deterministic at a fixed seed:

1. **Standalone** — every triggering test runs straight through the
   interpreter (:meth:`TriggeringTest.run`); this measures the
   *triggering-test reproduction rate*.
2. **Hive workload** — the same tests become
   :class:`~repro.guidance.steering.SteeringDirective` replay runs mixed
   with seeded background executions, shipped through an executor
   backend (serial/thread/process) into a per-bug
   :class:`~repro.hive.hive.Hive`; this measures *detection* (did any
   shipped run manifest the bug?) and *localization* (Ochiai rank of the
   true defect site in the merged tree).

Schedules the directive wire format cannot express (priority, plain
round-robin) are first recorded standalone with a pick-recording proxy
and replayed as fixed pick sequences — the interpreter is deterministic,
so the recording is exact.

Because the plan, the pod RNG streams, and the tree merge are all
backend-invariant, :func:`run_registry` yields byte-identical results
under every backend at a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.localize import localize_from_tree, rank_of_block
from repro.chaos.invariants import Invariants
from repro.exec.backends import make_backend
from repro.exec.plan import PlannedRun, RoundPlan
from repro.fixes.repairlab import RepairLab
from repro.fixes.validation import FixValidator, make_validation_suite
from repro.guidance.steering import SteeringDirective
from repro.hive.hive import Hive
from repro.pod.pod import Pod
from repro.progmodel.interpreter import ExecutionLimits, FaultPlan
from repro.registry.model import BugRegistry, RegisteredBug, TriggeringTest
from repro.rng import make_rng
from repro.tracing.capture import FullCapture

__all__ = ["RegistryRunConfig", "BugRunResult", "run_registry", "run_bug"]


@dataclass
class RegistryRunConfig:
    """Knobs for one registry evaluation pass."""

    seed: int = 0
    backend: str = "serial"
    workers: int = 0
    family: str = "all"
    #: Unguided background executions shipped alongside the directives.
    background_runs: int = 24
    pods: int = 2
    max_steps: int = 4000
    #: Push the known patch through RepairLab (the expensive part).
    validate_patches: bool = True


@dataclass
class BugRunResult:
    """Everything the scorecard needs about one registered bug."""

    ref: str
    family: str
    trigger_tests: int = 0
    trigger_reproduced: int = 0
    regression_tests: int = 0
    regression_passed: int = 0
    detected: bool = False
    runs_shipped: int = 0
    failures_observed: int = 0
    localization_rank: Optional[int] = None
    #: None when patch validation was skipped.
    patch_regressions: Optional[int] = None
    patch_trigger_pass: Optional[bool] = None
    repair_valid: Optional[bool] = None
    invariants_ok: bool = True

    @property
    def reproduction_rate(self) -> float:
        if not self.trigger_tests:
            return 0.0
        return self.trigger_reproduced / self.trigger_tests


class _RecordingScheduler:
    """Proxy that records the pick sequence an inner scheduler makes."""

    def __init__(self, inner):
        self._inner = inner
        self.picks: List[int] = []

    def pick(self, step: int, runnable: List[int]) -> int:
        tid = self._inner.pick(step, runnable)
        self.picks.append(tid)
        return tid


def _record_picks(bug: RegisteredBug,
                  test: TriggeringTest) -> Tuple[int, ...]:
    """The exact pick sequence this test takes, for wire replay."""
    recorder = _RecordingScheduler(test.build_scheduler())
    from repro.progmodel.interpreter import (
        Environment, ExecutionLimits, Interpreter,
    )
    environment = Environment(fault_plan=FaultPlan(dict(test.fault_plan))
                              if test.fault_plan else None)
    Interpreter(bug.program,
                limits=ExecutionLimits(max_steps=test.max_steps)).run(
        dict(test.inputs), environment=environment, scheduler=recorder)
    return tuple(recorder.picks)


def _directive_for(bug: RegisteredBug,
                   test: TriggeringTest) -> SteeringDirective:
    """A replay directive that re-drives this test through a pod."""
    picks = test.schedule_picks or _record_picks(bug, test)
    return SteeringDirective(
        kind="replay_schedule",
        inputs=dict(test.inputs),
        fault_plan=(FaultPlan(dict(test.fault_plan))
                    if test.fault_plan else None),
        schedule_picks=tuple(picks),
        reason=f"registry {test.test_id}")


def run_bug(bug: RegisteredBug, config: RegistryRunConfig,
            invariants: Optional[Invariants] = None) -> BugRunResult:
    """Evaluate one registered bug standalone and as a hive workload."""
    out = BugRunResult(ref=bug.ref, family=bug.family)
    limits = ExecutionLimits(max_steps=config.max_steps)

    # 1. Standalone reproduction through the interpreter.
    for test in bug.tests:
        if test.is_trigger:
            out.trigger_tests += 1
            if test.reproduces(bug.program):
                out.trigger_reproduced += 1
        else:
            out.regression_tests += 1
            if test.passes(bug.program):
                out.regression_passed += 1

    # 2. Hive workload: directives + seeded background runs.
    pods = [Pod(f"reg-{bug.ref.replace('/', '-')}-p{i}", bug.program,
                capture=FullCapture(), limits=limits, fault_rate=0.0,
                seed=config.seed + i)
            for i in range(max(1, config.pods))]
    runs: List[PlannedRun] = []
    for test in bug.tests:
        runs.append(PlannedRun(
            global_index=len(runs), pod_index=len(runs) % len(pods),
            inputs=dict(test.inputs), directive=_directive_for(bug, test)))
    rng = make_rng(config.seed, "registry", bug.ref)
    domains = sorted(bug.program.inputs.items())
    for _ in range(config.background_runs):
        vector = {name: rng.randint(lo, hi) for name, (lo, hi) in domains}
        runs.append(PlannedRun(
            global_index=len(runs), pod_index=len(runs) % len(pods),
            inputs=vector))
    plan = RoundPlan(round_index=0, hive_version=bug.program.version,
                     runs=runs)
    with make_backend(config.backend, pods, bug.program,
                      capture=FullCapture(), limits=limits,
                      workers=config.workers) as backend:
        shard_results = backend.run_round(plan)

    spec = bug.spec
    records = [record for shard in shard_results for record in shard.records]
    out.runs_shipped = len(records)
    out.failures_observed = sum(1 for r in records if r.has_failure)
    out.detected = any(
        spec.matches_result(r.outcome, r.failure_message, r.failure_block)
        for r in records)

    # 3. Localization against the merged collective tree.
    hive = Hive(bug.program, limits=limits, validate_fixes=False,
                enable_proofs=False)
    hive.ingest_batch(
        [batch for shard in shard_results for batch in shard.batches],
        tree_deltas=[(shard.tree_version, shard.tree_delta)
                     for shard in shard_results if shard.tree_delta])
    out.localization_rank = rank_of_block(
        localize_from_tree(hive.tree), *spec.defect_site)
    out.invariants_ok = (invariants or Invariants()).check(hive).ok

    # 4. Repair validity: the known patch through RepairLab.
    if config.validate_patches and bug.patch is not None:
        # Lost-wakeup patches are validated on round-robin cases only:
        # random schedules legitimately reorder the signal handshake, so
        # cross-run global comparisons there reject correct patches.
        seeds = 0 if bug.family == "wakeup" else 4
        suite = make_validation_suite(bug.program, schedule_seeds=seeds,
                                      with_faults=spec.needs_fault)
        lab = RepairLab(FixValidator(bug.program, limits=limits,
                                     suite=suite))
        ranked = lab.evaluate([bug.patch])
        out.patch_regressions = ranked[0].report.regressions
        patched = bug.patched_program()
        out.patch_trigger_pass = all(t.passes(patched) for t in bug.tests)
        out.repair_valid = (out.patch_regressions == 0
                            and out.patch_trigger_pass)
    return out


def run_registry(registry: BugRegistry,
                 config: Optional[RegistryRunConfig] = None,
                 ) -> List[BugRunResult]:
    """Evaluate every bug in ``config.family`` (deterministic order).

    Each bug gets a fresh :class:`Invariants` instance — the catalogue
    tracks counter monotonicity across checks, which only makes sense
    within one hive's lifetime.
    """
    config = config or RegistryRunConfig()
    return [run_bug(bug, config) for bug in registry.bugs(config.family)]
