"""Constraint solving over small bounded-integer domains.

Feasibility of a path condition is decided by enumeration over the
domains of only the symbols the condition mentions, with two essential
accelerations:

* **witness reuse** — forked states pass their parent's satisfying
  assignment as a hint; if it still satisfies the extended condition,
  no search happens at all (the overwhelmingly common case), and

* **constraint-ordered backtracking** — symbols are assigned one at a
  time; every constraint whose symbols are all bound is checked as soon
  as possible, pruning whole subtrees of the assignment space.

With a :class:`~repro.symbolic.cache.ConstraintCache` attached, the
solver adds the collective reuse tiers on top (see docs/SOLVING.md):
conditions are split into independent slices, cached-UNSAT slices
refute the whole condition at probe cost, cached models are replayed
either exactly or rehydrated from a sub-slice, and every slice solved
from scratch is stored for the rest of the collective. Cache probes
are charged honestly in the same virtual-cost currency as search: one
evaluation per probe, a full condition check per rehydration attempt.

The solver meters its own work in *virtual cost units* (one constraint
evaluation = 1 unit), giving deterministic, platform-independent cost
numbers for the experiments (E2's "merging needs no solving" claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.config import BaseReport
from repro.errors import SolverError
from repro.symbolic.expr import eval_concrete
from repro.symbolic.pathcond import PathCondition

if TYPE_CHECKING:
    from repro.symbolic.cache import ConditionSlice, ConstraintCache

__all__ = ["SolverStats", "EnumerationSolver"]

Model = Dict[str, int]


@dataclass
class SolverStats(BaseReport):
    """Cumulative virtual-cost accounting."""

    calls: int = 0
    hint_hits: int = 0
    evaluations: int = 0       # constraint evaluations (the cost unit)
    unsat_results: int = 0
    interval_prunes: int = 0   # UNSAT proven by propagation alone

    def snapshot(self) -> "SolverStats":
        return SolverStats(self.calls, self.hint_hits, self.evaluations,
                           self.unsat_results, self.interval_prunes)

    def add(self, other: "SolverStats") -> "SolverStats":
        """Fold another stats block into this one (hive aggregation)."""
        self.calls += other.calls
        self.hint_hits += other.hint_hits
        self.evaluations += other.evaluations
        self.unsat_results += other.unsat_results
        self.interval_prunes += other.interval_prunes
        return self


class EnumerationSolver:
    """Backtracking enumeration over bounded integer domains."""

    def __init__(self, max_evaluations: int = 2_000_000,
                 use_intervals: bool = True,
                 cache: Optional["ConstraintCache"] = None):
        self.stats = SolverStats()
        self.cache = cache
        self._max_evaluations = max_evaluations  # per solve() call
        self._call_budget_end = max_evaluations
        self._use_intervals = use_intervals

    def solve(self, condition: PathCondition,
              domains: Mapping[str, Tuple[int, int]],
              hint: Optional[Model] = None) -> Optional[Model]:
        """Return a satisfying assignment, or None if unsatisfiable.

        Only symbols mentioned by the condition are searched; the
        returned model binds exactly those. ``hint`` is checked first.
        """
        self.stats.calls += 1
        self._call_budget_end = self.stats.evaluations + self._max_evaluations
        symbols = condition.symbols()
        for name in symbols:
            if name not in domains:
                raise SolverError(f"no domain for symbol {name!r}")

        if hint is not None and all(name in hint for name in symbols):
            self.stats.evaluations += max(1, len(condition))
            if condition.satisfied_by(hint):
                self.stats.hint_hits += 1
                model = {name: hint[name] for name in symbols}
                if self.cache is not None:
                    # A verified witness is a free by-product — bank
                    # every slice of it for the collective.
                    self._bank_model(condition, model)
                return model

        # Interval propagation: prove UNSAT cheaply, or shrink the
        # enumeration space (sound over-approximation — completeness
        # is untouched).
        base_domains = domains
        if self._use_intervals and symbols:
            from repro.symbolic.intervals import UNSAT, narrow_domains
            self.stats.evaluations += len(condition)  # the pre-pass cost
            narrowed = narrow_domains(condition, domains)
            if narrowed == UNSAT:
                self.stats.interval_prunes += 1
                self.stats.unsat_results += 1
                return None
            domains = {**dict(domains), **narrowed}

        if self.cache is not None:
            return self._solve_sliced(condition, domains, base_domains)

        model = self._search_conjuncts(condition.constraints, symbols,
                                       domains)
        if model is None:
            self.stats.unsat_results += 1
        return model

    def feasible(self, condition: PathCondition,
                 domains: Mapping[str, Tuple[int, int]],
                 hint: Optional[Model] = None) -> bool:
        return self.solve(condition, domains, hint) is not None

    # -- cached solving -------------------------------------------------------

    def _solve_sliced(self, condition: PathCondition, domains, base_domains
                      ) -> Optional[Model]:
        """Solve slice-by-slice through the cache.

        Slices are variable-disjoint, so per-slice models union into a
        model of the whole condition, and one UNSAT slice refutes it.
        The UNSAT-subsumption pass runs first: a single cached refuted
        slice ends the call at probe cost (tier 3), before any search.
        """
        from repro.symbolic.cache import condition_slices
        slices = condition_slices(condition)
        for piece in slices:
            if not piece.symbols:
                continue
            self._charge(1)
            if self.cache.probe_unsat(piece.key, piece.order, base_domains):
                self.stats.unsat_results += 1
                return None
        model: Model = {}
        for piece in slices:
            sub = self._solve_slice(piece, domains, base_domains)
            if sub is None:
                self.stats.unsat_results += 1
                return None
            model.update(sub)
        return model

    def _solve_slice(self, piece: "ConditionSlice", domains, base_domains
                     ) -> Optional[Model]:
        cache = self.cache
        if not piece.symbols:
            # Constant conjuncts: nothing to search, just evaluate.
            return {} if self._check(piece.conjuncts, {}) else None
        # Tier 1: exact hit — a stored model valid under current domains.
        self._charge(1)
        cached = cache.probe_sat(piece.key, piece.order, domains)
        if cached is not None:
            return cached
        # Tier 2: rehydration — models of cached sub-slices of this
        # slice minus its newest conjunct, extended with domain-low
        # values for unbound symbols, checked like a witness hint.
        candidate = self._rehydrate_candidate(piece, domains)
        if candidate is not None:
            self._charge(len(piece.conjuncts))
            if self._satisfied(piece.conjuncts, candidate):
                cache.note_rehydrated()
                cache.store_sat(piece.key, piece.order, candidate)
                return candidate
        # Miss: search this slice alone, then bank the outcome. UNSAT
        # is stored against the *original* domains — interval narrowing
        # is solution-preserving, so the refutation holds for them, and
        # the wider box subsumes more future conditions.
        cache.note_miss()
        sub = self._search_conjuncts(piece.conjuncts, piece.symbols, domains)
        if sub is None:
            cache.store_unsat(piece.key, piece.order, base_domains)
        else:
            cache.store_sat(piece.key, piece.order, sub)
        return sub

    def _rehydrate_candidate(self, piece: "ConditionSlice", domains
                             ) -> Optional[Model]:
        """A candidate model assembled from cached sub-slice models."""
        if len(piece.conjuncts) < 2:
            return None
        from repro.symbolic.cache import conjunct_slices
        candidate: Model = {}
        found = False
        for parent in conjunct_slices(piece.conjuncts[:-1]):
            if not parent.symbols:
                continue
            cached = self.cache.peek_sat(parent.key, parent.order, domains)
            if cached is not None:
                candidate.update(cached)
                found = True
        if not found:
            return None
        for name in piece.symbols:
            if name not in candidate:
                candidate[name] = domains[name][0]
        return candidate

    def _bank_model(self, condition: PathCondition, model: Model) -> None:
        """Store every slice of a verified model (hint-hit recycling)."""
        from repro.symbolic.cache import condition_slices
        for piece in condition_slices(condition):
            if piece.symbols:
                self.cache.store_sat(
                    piece.key, piece.order,
                    {name: model[name] for name in piece.symbols})

    # -- internals ------------------------------------------------------------

    def _charge(self, amount: int) -> None:
        self.stats.evaluations += amount
        if self.stats.evaluations > self._call_budget_end:
            raise SolverError("solver evaluation budget exhausted")

    @staticmethod
    def _satisfied(constraints: Sequence[Tuple], model: Model) -> bool:
        """Uncounted satisfaction check (cost charged by the caller)."""
        for expr, truth in constraints:
            try:
                value = eval_concrete(expr, model)
            except ZeroDivisionError:
                return False
            if bool(value) != truth:
                return False
        return True

    def _search_conjuncts(self, constraints: Sequence[Tuple],
                          symbols: Sequence[str], domains
                          ) -> Optional[Model]:
        """Backtracking search over the given conjuncts and symbols."""
        # Order constraints by when their symbols become fully bound.
        order = list(symbols)
        ready_at: List[List[Tuple]] = [[] for _ in range(len(order) + 1)]
        position = {name: i for i, name in enumerate(order)}
        for expr, truth in constraints:
            needed = [position[name] for name in expr.inputs()]
            slot = (max(needed) + 1) if needed else 0
            ready_at[slot].append((expr, truth))

        model: Model = {}
        if self._search(0, order, ready_at, domains, model):
            return dict(model)
        return None

    def _check(self, constraints, model: Model) -> bool:
        for expr, truth in constraints:
            self.stats.evaluations += 1
            if self.stats.evaluations > self._call_budget_end:
                raise SolverError("solver evaluation budget exhausted")
            try:
                value = eval_concrete(expr, model)
            except ZeroDivisionError:
                return False
            if bool(value) != truth:
                return False
        return True

    def _search(self, index: int, order, ready_at, domains,
                model: Model) -> bool:
        if not self._check(ready_at[index], model):
            return False
        if index == len(order):
            return True
        name = order[index]
        lo, hi = domains[name]
        for value in range(lo, hi + 1):
            model[name] = value
            if self._search(index + 1, order, ready_at, domains, model):
                return True
        del model[name]
        return False
