"""Constraint solving over small bounded-integer domains.

Feasibility of a path condition is decided by enumeration over the
domains of only the symbols the condition mentions, with two essential
accelerations:

* **witness reuse** — forked states pass their parent's satisfying
  assignment as a hint; if it still satisfies the extended condition,
  no search happens at all (the overwhelmingly common case), and

* **constraint-ordered backtracking** — symbols are assigned one at a
  time; every constraint whose symbols are all bound is checked as soon
  as possible, pruning whole subtrees of the assignment space.

The solver meters its own work in *virtual cost units* (one constraint
evaluation = 1 unit), giving deterministic, platform-independent cost
numbers for the experiments (E2's "merging needs no solving" claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import SolverError
from repro.symbolic.expr import eval_concrete
from repro.symbolic.pathcond import PathCondition

__all__ = ["SolverStats", "EnumerationSolver"]

Model = Dict[str, int]


@dataclass
class SolverStats:
    """Cumulative virtual-cost accounting."""

    calls: int = 0
    hint_hits: int = 0
    evaluations: int = 0       # constraint evaluations (the cost unit)
    unsat_results: int = 0
    interval_prunes: int = 0   # UNSAT proven by propagation alone

    def snapshot(self) -> "SolverStats":
        return SolverStats(self.calls, self.hint_hits, self.evaluations,
                           self.unsat_results, self.interval_prunes)


class EnumerationSolver:
    """Backtracking enumeration over bounded integer domains."""

    def __init__(self, max_evaluations: int = 2_000_000,
                 use_intervals: bool = True):
        self.stats = SolverStats()
        self._max_evaluations = max_evaluations  # per solve() call
        self._call_budget_end = max_evaluations
        self._use_intervals = use_intervals

    def solve(self, condition: PathCondition,
              domains: Mapping[str, Tuple[int, int]],
              hint: Optional[Model] = None) -> Optional[Model]:
        """Return a satisfying assignment, or None if unsatisfiable.

        Only symbols mentioned by the condition are searched; the
        returned model binds exactly those. ``hint`` is checked first.
        """
        self.stats.calls += 1
        self._call_budget_end = self.stats.evaluations + self._max_evaluations
        symbols = condition.symbols()
        for name in symbols:
            if name not in domains:
                raise SolverError(f"no domain for symbol {name!r}")

        if hint is not None and all(name in hint for name in symbols):
            self.stats.evaluations += max(1, len(condition))
            if condition.satisfied_by(hint):
                self.stats.hint_hits += 1
                return {name: hint[name] for name in symbols}

        # Interval propagation: prove UNSAT cheaply, or shrink the
        # enumeration space (sound over-approximation — completeness
        # is untouched).
        if self._use_intervals and symbols:
            from repro.symbolic.intervals import UNSAT, narrow_domains
            self.stats.evaluations += len(condition)  # the pre-pass cost
            narrowed = narrow_domains(condition, domains)
            if narrowed == UNSAT:
                self.stats.interval_prunes += 1
                self.stats.unsat_results += 1
                return None
            domains = {**dict(domains), **narrowed}

        # Order constraints by when their symbols become fully bound.
        order = list(symbols)
        ready_at: List[List[Tuple]] = [[] for _ in range(len(order) + 1)]
        position = {name: i for i, name in enumerate(order)}
        for expr, truth in condition.constraints:
            needed = [position[name] for name in expr.inputs()]
            slot = (max(needed) + 1) if needed else 0
            ready_at[slot].append((expr, truth))

        model: Model = {}
        if self._search(0, order, ready_at, domains, model):
            return dict(model)
        self.stats.unsat_results += 1
        return None

    def feasible(self, condition: PathCondition,
                 domains: Mapping[str, Tuple[int, int]],
                 hint: Optional[Model] = None) -> bool:
        return self.solve(condition, domains, hint) is not None

    # -- internals -----------------------------------------------------------

    def _check(self, constraints, model: Model) -> bool:
        for expr, truth in constraints:
            self.stats.evaluations += 1
            if self.stats.evaluations > self._call_budget_end:
                raise SolverError("solver evaluation budget exhausted")
            try:
                value = eval_concrete(expr, model)
            except ZeroDivisionError:
                return False
            if bool(value) != truth:
                return False
        return True

    def _search(self, index: int, order, ready_at, domains,
                model: Model) -> bool:
        if not self._check(ready_at[index], model):
            return False
        if index == len(order):
            return True
        name = order[index]
        lo, hi = domains[name]
        for value in range(lo, hi + 1):
            model[name] = value
            if self._search(index + 1, order, ready_at, domains, model):
                return True
        del model[name]
        return False
