"""Relaxed execution consistency (S2E-style in-vivo analysis, Sec. 4).

The paper: "when doing unit testing, one typically exercises the unit
in ways that are consistent with the unit's interface, regardless of
whether all those paths are indeed feasible in an integrated system.
This overapproximates the paths through the unit, but reasoning at the
unit level (instead of system level) can be faster [...]. If the unit
behaves correctly for a superset of the feasible paths, then it is
guaranteed to behave correctly for all feasible paths."

Two explorations of the same unit (a function):

* :func:`explore_unit_system_consistent` — explore the whole program
  and project each system path onto the unit's internal decisions;
  only combinations reachable in vivo appear, at whole-program cost.
* :func:`explore_unit_relaxed` — explore the unit alone with free
  parameters; a superset of unit paths, at unit-only cost.

The report compares path sets and solver cost, which is experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.progmodel.ir import Program
from repro.progmodel.interpreter import Outcome
from repro.symbolic.engine import SymbolicEngine, SymbolicLimits, SymPath
from repro.symbolic.solver import EnumerationSolver

__all__ = [
    "UnitExploration", "RelaxedExplorationReport",
    "explore_unit_relaxed", "explore_unit_system_consistent",
    "compare_unit_explorations",
]

Site = Tuple[int, str, str]
UnitPath = Tuple[Tuple[str, bool], ...]  # ((block, taken), ...) inside the unit


@dataclass
class UnitExploration:
    """Paths through one unit plus the cost of finding them."""

    function: str
    unit_paths: FrozenSet[UnitPath]
    failing_paths: FrozenSet[UnitPath]
    solver_evaluations: int
    engine_steps: int
    whole_paths_explored: int


@dataclass
class RelaxedExplorationReport:
    """E7's row: relaxed vs system-consistent exploration of a unit."""

    function: str
    consistent: UnitExploration
    relaxed: UnitExploration

    @property
    def is_superset(self) -> bool:
        """Soundness: relaxed paths must cover all feasible unit paths."""
        return self.consistent.unit_paths <= self.relaxed.unit_paths

    @property
    def overapproximation_ratio(self) -> float:
        if not self.consistent.unit_paths:
            return float(len(self.relaxed.unit_paths)) or 1.0
        return len(self.relaxed.unit_paths) / len(self.consistent.unit_paths)

    @property
    def cost_ratio(self) -> float:
        """system-consistent cost / relaxed cost (higher = relaxed wins)."""
        relaxed_cost = max(1, self.relaxed.solver_evaluations
                           + self.relaxed.engine_steps)
        consistent_cost = (self.consistent.solver_evaluations
                           + self.consistent.engine_steps)
        return consistent_cost / relaxed_cost


def _project_unit_invocations(path: SymPath, function: str,
                              ) -> List[UnitPath]:
    """Split a whole-program path into per-invocation unit fragments.

    Because execution is single-threaded, a unit invocation's symbolic
    decisions form a consecutive run in the path (no other function's
    decisions interleave). Back-to-back invocations with *no* caller
    decision between them would merge under this rule; callers that
    need exact per-invocation splits should ensure a caller-side
    decision separates consecutive calls (true of the corpus shape).
    """
    fragments: List[UnitPath] = []
    current: List[Tuple[str, bool]] = []
    for site, taken in path.decisions:
        if site[1] == function:
            current.append((site[2], taken))
        elif current:
            fragments.append(tuple(current))
            current = []
    if current:
        fragments.append(tuple(current))
    return fragments


def explore_unit_system_consistent(program: Program, function: str,
                                   limits: Optional[SymbolicLimits] = None,
                                   ) -> UnitExploration:
    """Explore the whole program; project paths onto ``function``.

    ``failing_paths`` here are unit fragments of whole-program paths
    that failed anywhere — a conservative attribution.
    """
    solver = EnumerationSolver()
    engine = SymbolicEngine(program, solver=solver, limits=limits)
    paths = engine.explore()
    unit_paths = set()
    failing = set()
    steps = 0
    for path in paths:
        steps += path.steps
        fragments = _project_unit_invocations(path, function)
        unit_paths.update(fragments)
        if path.outcome is not Outcome.OK:
            failing.update(fragments)
    return UnitExploration(
        function=function,
        unit_paths=frozenset(unit_paths),
        failing_paths=frozenset(failing),
        solver_evaluations=solver.stats.evaluations,
        engine_steps=steps,
        whole_paths_explored=len(paths),
    )


def explore_unit_relaxed(program: Program, function: str,
                         param_domains: Dict[str, Tuple[int, int]],
                         limits: Optional[SymbolicLimits] = None,
                         ) -> UnitExploration:
    """Explore ``function`` in isolation with free symbolic parameters."""
    solver = EnumerationSolver()
    engine = SymbolicEngine(program, solver=solver, limits=limits)
    paths = engine.explore_function(function, param_domains)
    unit_paths = set()
    failing = set()
    steps = 0
    for path in paths:
        steps += path.steps
        projected = tuple((site[2], taken) for site, taken in path.decisions
                          if site[1] == function)
        unit_paths.add(projected)
        if path.outcome is not Outcome.OK:
            failing.add(projected)
    return UnitExploration(
        function=function,
        unit_paths=frozenset(unit_paths),
        failing_paths=frozenset(failing),
        solver_evaluations=solver.stats.evaluations,
        engine_steps=steps,
        whole_paths_explored=len(paths),
    )


def compare_unit_explorations(program: Program, function: str,
                              param_domains: Dict[str, Tuple[int, int]],
                              limits: Optional[SymbolicLimits] = None,
                              ) -> RelaxedExplorationReport:
    """Run both consistency levels on one unit and compare (E7)."""
    consistent = explore_unit_system_consistent(program, function, limits)
    relaxed = explore_unit_relaxed(program, function, param_domains, limits)
    return RelaxedExplorationReport(
        function=function, consistent=consistent, relaxed=relaxed)
