"""Hive-side symbolic analysis (paper Secs. 3.3-4).

A small symbolic executor over the program IR: inputs are symbolic,
branch conditions accumulate into path conditions, and a seeded
enumeration-based constraint solver decides feasibility. The engine is
used to (a) enumerate the *feasible* execution tree as ground truth for
cumulative proofs, (b) synthesize concrete inputs that reach tree gaps
(execution guidance), and (c) run relaxed-consistency unit-level
exploration in the S2E style.
"""

from repro.symbolic.expr import apply_op, eval_concrete, fold, substitute
from repro.symbolic.pathcond import PathCondition
from repro.symbolic.solver import EnumerationSolver, SolverStats
from repro.symbolic.engine import SymbolicEngine, SymbolicLimits, SymPath
from repro.symbolic.relaxed import (
    RelaxedExplorationReport,
    explore_unit_relaxed,
    explore_unit_system_consistent,
)

__all__ = [
    "apply_op", "fold", "substitute", "eval_concrete",
    "PathCondition", "EnumerationSolver", "SolverStats",
    "SymbolicEngine", "SymbolicLimits", "SymPath",
    "explore_unit_relaxed", "explore_unit_system_consistent",
    "RelaxedExplorationReport",
]
