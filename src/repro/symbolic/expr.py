"""Symbolic expression utilities over the program IR.

Symbolic values *are* IR expressions whose only non-constant leaves are
:class:`~repro.progmodel.ir.Input` nodes (program inputs, or fresh
symbols the engine mints for symbolic syscall returns). This module
provides the shared operator semantics, constant folding, substitution,
and concrete evaluation.

**Interning.** The engine re-derives the same sub-expressions at every
fork (``fold(substitute(...))`` per branch), so :func:`fold` and
:func:`substitute` route every node they build through a hash-consing
table keyed by the structural :meth:`~repro.progmodel.ir.Expr.key`.
α-identical structures collapse to one shared node whose memoized
``key()``/``inputs()``/skeleton are computed once, and both functions
return the *original* node (identity fast path) whenever no rewrite
applies. Interning changes object identity only — never structure,
``key()`` output, or ``repr`` — so cache keys, dedup sets, and every
deterministic report are byte-for-byte unaffected (see
docs/PERFORMANCE.md for the invariant argument).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import SymbolicError
from repro.progmodel.ir import BinOp, Const, Expr, Input, UnOp, Var

__all__ = ["apply_op", "fold", "substitute", "eval_concrete", "is_const",
           "intern_expr"]

# Hash-consing table: structural key -> canonical node. Bounded by a
# wholesale clear (entries are pure caches; losing them loses sharing,
# never correctness), sized far above any single program's expression
# population so a clear only happens on pathological fleet churn.
_INTERN: Dict[tuple, Expr] = {}
_INTERN_MAX = 1 << 16

# Small-integer constants are by far the most common leaves.
_CONST_CACHE = {value: Const(value) for value in range(-16, 257)}


def intern_expr(expr: Expr) -> Expr:
    """The canonical shared node for ``expr``'s structure.

    Identity-based fast paths elsewhere (``a is b``) are sound for any
    two nodes that both came out of this table; the reverse direction
    (distinct identity) proves nothing, callers still fall back to
    ``key()`` comparison.
    """
    key = expr.key()
    cached = _INTERN.get(key)
    if cached is not None:
        return cached
    if len(_INTERN) >= _INTERN_MAX:
        _INTERN.clear()
    _INTERN[key] = expr
    return expr


def _const(value: int) -> Const:
    node = _CONST_CACHE.get(value)
    if node is not None:
        return node
    return intern_expr(Const(value))


def apply_op(op: str, left: int, right: int) -> int:
    """Integer semantics shared with the concrete interpreter.

    Raises ZeroDivisionError for ``// 0`` and ``% 0`` — callers decide
    whether that is a crash path or an infeasible evaluation.
    """
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "//":
        return left // right
    if op == "%":
        return left % right
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "and":
        return int(bool(left) and bool(right))
    if op == "or":
        return int(bool(left) or bool(right))
    if op == "min":
        return min(left, right)
    if op == "max":
        return max(left, right)
    raise SymbolicError(f"unknown operator {op!r}")


def is_const(expr: Expr) -> bool:
    return isinstance(expr, Const)


def fold(expr: Expr) -> Expr:
    """Constant-fold an expression bottom-up.

    Folding is conservative: ``// 0`` and ``% 0`` on constants are left
    unfolded so the engine can turn them into crash paths rather than
    silently failing here.

    The result is memoized on the node and interned, so re-folding a
    shared (or structurally repeated) expression is O(1); a fixpoint
    node folds to itself.
    """
    try:
        return expr._folded
    except AttributeError:
        pass
    folded = _fold_inner(expr)
    expr._folded = folded
    folded._folded = folded
    return folded


def _fold_inner(expr: Expr) -> Expr:
    if isinstance(expr, (Const, Input, Var)):
        return expr
    if isinstance(expr, UnOp):
        operand = fold(expr.operand)
        if isinstance(operand, Const):
            if expr.op == "neg":
                return _const(-operand.value)
            return _const(int(operand.value == 0))
        if operand is expr.operand:
            return intern_expr(expr)
        return intern_expr(UnOp(expr.op, operand))
    if isinstance(expr, BinOp):
        left = fold(expr.left)
        right = fold(expr.right)
        if isinstance(left, Const) and isinstance(right, Const):
            if expr.op in ("//", "%") and right.value == 0:
                if left is expr.left and right is expr.right:
                    return intern_expr(expr)
                return intern_expr(BinOp(expr.op, left, right))
            return _const(apply_op(expr.op, left.value, right.value))
        # Cheap algebraic identities keep path conditions small.
        #
        # Only *taint-faithful* rules are allowed: a rule may never turn
        # an input-dependent expression into a constant, because the
        # pods' dynamic taint tracking is conservative (x*0 is tainted
        # when x is) and path identities must agree between concrete
        # executions and the symbolic oracle. Absorption rules like
        # ``x * 0 -> 0`` or ``0 and x -> 0`` are therefore forbidden;
        # the solver prunes the degenerate direction instead.
        if isinstance(right, Const):
            if expr.op == "+" and right.value == 0:
                return left
            if expr.op == "*" and right.value == 1:
                return left
        if isinstance(left, Const):
            if expr.op == "+" and left.value == 0:
                return right
            if expr.op == "*" and left.value == 1:
                return right
        if left is expr.left and right is expr.right:
            return intern_expr(expr)
        return intern_expr(BinOp(expr.op, left, right))
    raise SymbolicError(f"cannot fold {expr!r}")


def substitute(expr: Expr, variables: Mapping[str, Expr],
               inputs: Optional[Mapping[str, Expr]] = None) -> Expr:
    """Replace Var leaves (and optionally Input leaves) by expressions.

    Missing Var bindings default to Const(0), mirroring the concrete
    interpreter's uninitialised-local semantics.

    Subtrees the substitution cannot touch are returned as-is (the
    memoized ``variables()``/``inputs()`` make that check O(1) on
    shared nodes); rebuilt nodes are interned.
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return variables.get(expr.name, _ZERO)
    if isinstance(expr, Input):
        if inputs is not None and expr.name in inputs:
            return inputs[expr.name]
        return expr
    if not expr.variables() and (
            inputs is None
            or not any(name in inputs for name in expr.inputs())):
        return expr
    if isinstance(expr, UnOp):
        operand = substitute(expr.operand, variables, inputs)
        if operand is expr.operand:
            return expr
        return intern_expr(UnOp(expr.op, operand))
    if isinstance(expr, BinOp):
        left = substitute(expr.left, variables, inputs)
        right = substitute(expr.right, variables, inputs)
        if left is expr.left and right is expr.right:
            return expr
        return intern_expr(BinOp(expr.op, left, right))
    raise SymbolicError(f"cannot substitute into {expr!r}")


_ZERO = _const(0)


def eval_concrete(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate an expression whose Input leaves are bound by ``env``.

    Var leaves are not allowed here — substitute them away first.
    Raises ZeroDivisionError on division/modulo by zero.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Input):
        try:
            return env[expr.name]
        except KeyError:
            raise SymbolicError(f"unbound symbol {expr.name!r}")
    if isinstance(expr, Var):
        raise SymbolicError(
            f"eval_concrete saw unresolved variable {expr.name!r}")
    if isinstance(expr, UnOp):
        value = eval_concrete(expr.operand, env)
        return -value if expr.op == "neg" else int(value == 0)
    if isinstance(expr, BinOp):
        return apply_op(expr.op,
                        eval_concrete(expr.left, env),
                        eval_concrete(expr.right, env))
    raise SymbolicError(f"cannot evaluate {expr!r}")
