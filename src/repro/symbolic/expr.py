"""Symbolic expression utilities over the program IR.

Symbolic values *are* IR expressions whose only non-constant leaves are
:class:`~repro.progmodel.ir.Input` nodes (program inputs, or fresh
symbols the engine mints for symbolic syscall returns). This module
provides the shared operator semantics, constant folding, substitution,
and concrete evaluation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import SymbolicError
from repro.progmodel.ir import BinOp, Const, Expr, Input, UnOp, Var

__all__ = ["apply_op", "fold", "substitute", "eval_concrete", "is_const"]


def apply_op(op: str, left: int, right: int) -> int:
    """Integer semantics shared with the concrete interpreter.

    Raises ZeroDivisionError for ``// 0`` and ``% 0`` — callers decide
    whether that is a crash path or an infeasible evaluation.
    """
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "//":
        return left // right
    if op == "%":
        return left % right
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "and":
        return int(bool(left) and bool(right))
    if op == "or":
        return int(bool(left) or bool(right))
    if op == "min":
        return min(left, right)
    if op == "max":
        return max(left, right)
    raise SymbolicError(f"unknown operator {op!r}")


def is_const(expr: Expr) -> bool:
    return isinstance(expr, Const)


def fold(expr: Expr) -> Expr:
    """Constant-fold an expression bottom-up.

    Folding is conservative: ``// 0`` and ``% 0`` on constants are left
    unfolded so the engine can turn them into crash paths rather than
    silently failing here.
    """
    if isinstance(expr, (Const, Input, Var)):
        return expr
    if isinstance(expr, UnOp):
        operand = fold(expr.operand)
        if isinstance(operand, Const):
            if expr.op == "neg":
                return Const(-operand.value)
            return Const(int(operand.value == 0))
        return UnOp(expr.op, operand)
    if isinstance(expr, BinOp):
        left = fold(expr.left)
        right = fold(expr.right)
        if isinstance(left, Const) and isinstance(right, Const):
            if expr.op in ("//", "%") and right.value == 0:
                return BinOp(expr.op, left, right)
            return Const(apply_op(expr.op, left.value, right.value))
        # Cheap algebraic identities keep path conditions small.
        #
        # Only *taint-faithful* rules are allowed: a rule may never turn
        # an input-dependent expression into a constant, because the
        # pods' dynamic taint tracking is conservative (x*0 is tainted
        # when x is) and path identities must agree between concrete
        # executions and the symbolic oracle. Absorption rules like
        # ``x * 0 -> 0`` or ``0 and x -> 0`` are therefore forbidden;
        # the solver prunes the degenerate direction instead.
        if isinstance(right, Const):
            if expr.op == "+" and right.value == 0:
                return left
            if expr.op == "*" and right.value == 1:
                return left
        if isinstance(left, Const):
            if expr.op == "+" and left.value == 0:
                return right
            if expr.op == "*" and left.value == 1:
                return right
        return BinOp(expr.op, left, right)
    raise SymbolicError(f"cannot fold {expr!r}")


def substitute(expr: Expr, variables: Mapping[str, Expr],
               inputs: Optional[Mapping[str, Expr]] = None) -> Expr:
    """Replace Var leaves (and optionally Input leaves) by expressions.

    Missing Var bindings default to Const(0), mirroring the concrete
    interpreter's uninitialised-local semantics.
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return variables.get(expr.name, Const(0))
    if isinstance(expr, Input):
        if inputs is not None and expr.name in inputs:
            return inputs[expr.name]
        return expr
    if isinstance(expr, UnOp):
        return UnOp(expr.op, substitute(expr.operand, variables, inputs))
    if isinstance(expr, BinOp):
        return BinOp(expr.op,
                     substitute(expr.left, variables, inputs),
                     substitute(expr.right, variables, inputs))
    raise SymbolicError(f"cannot substitute into {expr!r}")


def eval_concrete(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate an expression whose Input leaves are bound by ``env``.

    Var leaves are not allowed here — substitute them away first.
    Raises ZeroDivisionError on division/modulo by zero.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Input):
        try:
            return env[expr.name]
        except KeyError:
            raise SymbolicError(f"unbound symbol {expr.name!r}")
    if isinstance(expr, Var):
        raise SymbolicError(
            f"eval_concrete saw unresolved variable {expr.name!r}")
    if isinstance(expr, UnOp):
        value = eval_concrete(expr.operand, env)
        return -value if expr.op == "neg" else int(value == 0)
    if isinstance(expr, BinOp):
        return apply_op(expr.op,
                        eval_concrete(expr.left, env),
                        eval_concrete(expr.right, env))
    raise SymbolicError(f"cannot evaluate {expr!r}")
