"""Symbolic executor over the program IR.

Explores the *feasible* execution tree of a (single-threaded view of a)
program: inputs are symbolic, deterministic computation folds to
constants, and every branch on a symbolic condition forks the state —
with each side's feasibility decided by the enumeration solver before
it is explored further. This is the classic King-style construction the
paper contrasts against dynamic tree building (Sec. 3.2), and the
oracle SoftBorg's prover and guidance layers lean on.

Scope notes (documented substitutions):

* Threads: the engine explores one thread function in isolation;
  schedule-dependent behaviour (deadlocks) is handled by concrete
  schedule exploration in the fixes/validation layer, not symbolically.
  Lock operations are tracked for self-deadlock only.
* Syscalls: ``symbolic_syscalls=False`` (default) models the
  fault-free environment deterministically, so the enumerated tree
  matches natural fault-free executions. With ``symbolic_syscalls=True``
  each ``open``/``read``/``recv``/``write`` return becomes a fresh
  bounded symbol, over-approximating all environment behaviours (used
  to reason about fault paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import SymbolicError
from repro.obs import Instrumented
from repro.progmodel.interpreter import Outcome
from repro.progmodel.ir import (
    Assert,
    Assign,
    BinOp,
    Branch,
    Call,
    Const,
    Crash,
    Expr,
    Halt,
    Input,
    Jump,
    LoadGlobal,
    Lock,
    Program,
    Return,
    StoreGlobal,
    Syscall,
    Unlock,
)
from repro.symbolic.expr import eval_concrete, fold, substitute
from repro.symbolic.pathcond import PathCondition
from repro.symbolic.solver import EnumerationSolver, Model

__all__ = ["SymPath", "SymbolicLimits", "SymbolicEngine"]

Site = Tuple[int, str, str]
Decision = Tuple[Site, bool]


@dataclass
class SymPath:
    """One fully explored feasible path."""

    decisions: Tuple[Decision, ...]
    condition: PathCondition
    outcome: Outcome
    failure_message: Optional[str] = None
    example_inputs: Dict[str, int] = field(default_factory=dict)
    steps: int = 0


@dataclass
class SymbolicLimits:
    """Exploration budgets. Exceeding ``max_paths`` raises (the caller
    asked for an exhaustive answer it cannot have); exceeding
    ``max_steps`` on one path marks that path HANG, mirroring the
    concrete interpreter's budget semantics."""

    max_paths: int = 4096
    max_steps: int = 20_000
    max_call_depth: int = 64


@dataclass
class _SymFrame:
    function: str
    block: str
    index: int
    locals: Dict[str, Expr]
    return_dst: Optional[str] = None


@dataclass
class _SymState:
    frames: List[_SymFrame]
    globals: Dict[str, Expr]
    condition: PathCondition
    decisions: List[Decision]
    witness: Model
    held_locks: List[str]
    steps: int = 0
    syscall_counter: int = 0
    open_fds: Tuple[int, ...] = ()
    clock: int = 0
    pending_assert: Optional[Assert] = None
    assert_failed: Optional[str] = None

    def clone(self) -> "_SymState":
        return _SymState(
            frames=[_SymFrame(f.function, f.block, f.index, dict(f.locals),
                              f.return_dst) for f in self.frames],
            globals=dict(self.globals),
            condition=self.condition,
            decisions=list(self.decisions),
            witness=dict(self.witness),
            held_locks=list(self.held_locks),
            steps=self.steps,
            syscall_counter=self.syscall_counter,
            open_fds=self.open_fds,
            clock=self.clock,
            pending_assert=self.pending_assert,
            assert_failed=self.assert_failed,
        )


# What _advance_to_decision can yield.
_DONE = "done"
_Fork = Tuple[Site, Expr]


class SymbolicEngine(Instrumented):
    """Feasible-path enumeration for one program."""

    obs_namespace = "symbolic"

    def __init__(self, program: Program,
                 solver: Optional[EnumerationSolver] = None,
                 limits: Optional[SymbolicLimits] = None,
                 symbolic_syscalls: bool = False,
                 syscall_read_size: int = 64,
                 cache=None):
        self.program = program
        self.solver = solver or EnumerationSolver(cache=cache)
        if cache is not None and self.solver.cache is None:
            self.solver.cache = cache
        self.limits = limits or SymbolicLimits()
        self.symbolic_syscalls = symbolic_syscalls
        self._read_size = syscall_read_size
        self._domains: Dict[str, Tuple[int, int]] = dict(program.inputs)
        self._obs_paths = self.obs_counter("paths_explored")
        self._obs_solver_calls = self.obs_counter("solver_calls")
        self._obs_explore = self.obs_timer("explore")

    # -- public API -----------------------------------------------------------

    def explore(self, entry: Optional[str] = None) -> List[SymPath]:
        """Enumerate all feasible paths from ``entry`` (default: the
        program's first thread function)."""
        entry = entry or self.program.threads[0]
        return self._explore_from(self._initial_state(entry))

    def explore_function(self, function: str,
                         param_domains: Dict[str, Tuple[int, int]],
                         ) -> List[SymPath]:
        """Unit-level exploration: run ``function`` with each parameter
        a fresh unconstrained symbol over ``param_domains`` — the
        relaxed-consistency overapproximation (paper Sec. 4)."""
        func = self.program.function(function)
        locals_: Dict[str, Expr] = {}
        for param in func.params:
            symbol = f"__param_{param}"
            if param not in param_domains:
                raise SymbolicError(f"no domain for parameter {param!r}")
            self._domains[symbol] = param_domains[param]
            locals_[param] = Input(symbol)
        state = _SymState(
            frames=[_SymFrame(function, func.entry, 0, locals_)],
            globals={name: Const(value)
                     for name, value in self.program.globals.items()},
            condition=PathCondition(),
            decisions=[],
            witness={},
            held_locks=[],
        )
        return self._explore_from(state)

    def solve_prefix(self, decisions: Sequence[Decision],
                     ) -> Optional[Dict[str, int]]:
        """Find inputs that drive execution along ``decisions``.

        Walks the program symbolically, *forcing* each symbolic branch
        to the scripted direction; returns a satisfying input vector or
        None when the scripted path is infeasible or diverges (e.g. a
        decision that was syscall-fault-driven in the original run).
        This is the guidance layer's test-case generator (Sec. 3.3).
        """
        state = self._initial_state(self.program.threads[0])
        script = list(decisions)
        forced_last = not script  # empty script is trivially satisfied
        while script:
            step = self._advance_to_decision(state)
            if step == _DONE or isinstance(step, SymPath):
                return None  # path ended before reaching the gap
            site, cond = step
            # Recorded paths include decisions the engine resolves
            # concretely (syscall-return-driven branches under the
            # fault-free model); those never become fork points, so
            # skip script entries until one names this fork site. The
            # *final* entry — the direction the caller actually wants —
            # must be forced, never skipped.
            while script and script[0][0] != site:
                if len(script) == 1:
                    return None
                script.pop(0)
            if not script:
                break
            want_site, want_taken = script.pop(0)
            if not script:
                forced_last = True
            extended = state.condition.extended(cond, want_taken)
            model = self.solver.solve(extended, self._domains, state.witness)
            if model is None:
                return None
            state.condition = extended
            state.witness.update(model)
            state.decisions.append((site, want_taken))
            self._take_branch(state, want_taken)
        if not forced_last:
            return None
        inputs = {}
        for name, (lo, _hi) in self.program.inputs.items():
            inputs[name] = state.witness.get(name, lo)
        return inputs

    def recycle_witness(self, decisions: Sequence[Decision],
                        inputs: Mapping[str, int]) -> bool:
        """Recycle one concrete execution's by-products into the cache.

        ``decisions``/``inputs`` come from a replayed trace: the inputs
        *provably* drove execution along those decisions, so every
        prefix of the path condition is SAT with the inputs as witness —
        a free solver fact. This walks the program forcing the script
        (no solving; every fork direction is verified by concrete
        evaluation against ``inputs``) and stores the changed slice of
        each extension step, exactly the slices the guidance layer's
        incremental :meth:`solve_prefix` will probe next round.

        Returns False when the walk diverges (fault-driven decisions
        the fault-free model cannot force) — nothing wrong, just no
        recyclable by-product; facts banked before the divergence are
        still sound.
        """
        cache = self.solver.cache
        if cache is None:
            return False
        from repro.symbolic.cache import condition_slices
        state = self._initial_state(self.program.threads[0])
        script = list(decisions)
        while script:
            step = self._advance_to_decision(state)
            if step == _DONE or isinstance(step, SymPath):
                break
            site, cond = step
            # Same skip rule as solve_prefix: concretely-resolved
            # decisions in the recorded path never become fork sites.
            while script and script[0][0] != site:
                script.pop(0)
            if not script:
                return False
            _want_site, taken = script.pop(0)
            try:
                value = eval_concrete(cond, inputs)
            except (ZeroDivisionError, SymbolicError):
                return False
            if bool(value) != taken:
                return False  # trace and fault-free model disagree
            extended = state.condition.extended(cond, taken)
            if extended is not state.condition:
                for piece in condition_slices(extended):
                    if (piece.symbols
                            and any(expr is cond and t == taken
                                    for expr, t in piece.conjuncts)
                            and all(name in inputs
                                    for name in piece.symbols)):
                        cache.store_sat(
                            piece.key, piece.order,
                            {name: inputs[name] for name in piece.symbols})
            state.condition = extended
            state.decisions.append((site, taken))
            self._take_branch(state, taken)
        return not script

    # -- cooperative-exploration API (paper Sec. 4) ------------------------------

    def state_at_prefix(self, decisions: Sequence[Decision],
                        ) -> Optional[_SymState]:
        """Walk the program forcing ``decisions`` exactly; the returned
        state is positioned ready to continue exploration below that
        prefix. None when the prefix is infeasible or diverges.

        Unlike :meth:`solve_prefix`, every scripted decision must match
        a fork in order — this is the work-distribution primitive, and
        prefixes here come from the engine itself.
        """
        state = self._initial_state(self.program.threads[0])
        for want_site, want_taken in decisions:
            step = self._advance_to_decision(state)
            if step == _DONE or isinstance(step, SymPath):
                return None
            site, cond = step
            if site != want_site:
                return None
            extended = state.condition.extended(cond, want_taken)
            model = self.solver.solve(extended, self._domains, state.witness)
            if model is None:
                return None
            state.condition = extended
            state.witness.update(model)
            state.decisions.append((site, want_taken))
            self._take_branch(state, want_taken)
        return state

    def explore_subtree(self, prefix: Sequence[Decision]) -> List[SymPath]:
        """Exhaustively explore the subtree below ``prefix``."""
        state = self.state_at_prefix(prefix)
        if state is None:
            return []
        return self._explore_from(state)

    def explore_subtree_bounded(self, prefix: Sequence[Decision],
                                max_paths: int,
                                ) -> Tuple[List[SymPath],
                                           List[Tuple[Decision, ...]]]:
        """Explore below ``prefix``; stop after ``max_paths`` paths and
        hand back the *unexplored frontier* as child-task prefixes.

        This is how cooperative workers keep task granularity adaptive:
        an unexpectedly large subtree yields its completed paths plus
        the DFS frontier for other workers to continue from — no work
        is redone and no single worker serializes the computation.
        """
        state = self.state_at_prefix(prefix)
        if state is None:
            return [], []
        paths: List[SymPath] = []
        stack = [state]
        while stack:
            current = stack.pop()
            step = self._advance_to_decision(current)
            if step == _DONE:
                paths.append(self._finish(current, Outcome.OK, None))
            elif isinstance(step, SymPath):
                paths.append(step)
            else:
                site, cond = step
                for taken in (True, False):
                    extended = current.condition.extended(cond, taken)
                    model = self.solver.solve(extended, self._domains,
                                              current.witness)
                    if model is None:
                        continue
                    successor = current.clone()
                    successor.condition = extended
                    successor.witness.update(model)
                    successor.decisions.append((site, taken))
                    self._take_branch(successor, taken)
                    stack.append(successor)
            if len(paths) >= max_paths and stack:
                frontier = [tuple(s.decisions) for s in stack]
                return paths, frontier
        return paths, []

    def expand_node(self, prefix: Sequence[Decision],
                    ) -> Tuple[List[SymPath], List[Tuple[Decision, ...]]]:
        """One-step expansion below ``prefix``: returns (terminal paths,
        feasible child prefixes). Exactly one of the two lists is
        non-empty for a feasible prefix."""
        state = self.state_at_prefix(prefix)
        if state is None:
            return [], []
        step = self._advance_to_decision(state)
        if step == _DONE:
            return [self._finish(state, Outcome.OK, None)], []
        if isinstance(step, SymPath):
            return [step], []
        site, cond = step
        children = []
        for taken in (True, False):
            extended = state.condition.extended(cond, taken)
            if self.solver.solve(extended, self._domains,
                                 state.witness) is not None:
                children.append(tuple(state.decisions) + ((site, taken),))
        return [], children

    @property
    def work_done(self) -> int:
        """Cumulative virtual work (solver evaluations) — the cost
        meter cooperative exploration charges workers by."""
        return self.solver.stats.evaluations

    # -- exploration core -------------------------------------------------------

    def _explore_from(self, initial: _SymState) -> List[SymPath]:
        with self._obs_explore.time():
            return self._explore_from_inner(initial)

    def _explore_from_inner(self, initial: _SymState) -> List[SymPath]:
        paths: List[SymPath] = []
        stack = [initial]
        while stack:
            state = stack.pop()
            step = self._advance_to_decision(state)
            if step == _DONE:
                paths.append(self._finish(state, Outcome.OK, None))
            elif isinstance(step, SymPath):
                paths.append(step)
            else:
                site, cond = step
                for taken in (True, False):
                    extended = state.condition.extended(cond, taken)
                    self._obs_solver_calls.inc()
                    model = self.solver.solve(extended, self._domains,
                                              state.witness)
                    if model is None:
                        continue
                    successor = state.clone()
                    successor.condition = extended
                    successor.witness.update(model)
                    successor.decisions.append((site, taken))
                    self._take_branch(successor, taken)
                    stack.append(successor)
            if len(paths) > self.limits.max_paths:
                raise SymbolicError(
                    f"path budget {self.limits.max_paths} exceeded")
        paths.reverse()  # stable, roughly left-to-right order
        self._obs_paths.inc(len(paths))
        return paths

    def _initial_state(self, entry: str) -> _SymState:
        func = self.program.function(entry)
        if func.params:
            raise SymbolicError(f"entry function {entry!r} takes parameters")
        return _SymState(
            frames=[_SymFrame(entry, func.entry, 0, {})],
            globals={name: Const(value)
                     for name, value in self.program.globals.items()},
            condition=PathCondition(),
            decisions=[],
            witness={},
            held_locks=[],
        )

    def _advance_to_decision(self, state: _SymState,
                             ) -> Union[str, SymPath, _Fork]:
        """Execute deterministically until a symbolic decision point.

        Returns ``(site, cond_expr)`` when a fork is needed, a SymPath
        when the path terminated with a failure, or ``"done"`` on clean
        termination.
        """
        program = self.program
        while True:
            if not state.frames:
                return _DONE
            if state.steps >= self.limits.max_steps:
                return self._finish(state, Outcome.HANG,
                                    "step budget exhausted")
            frame = state.frames[-1]
            func = program.function(frame.function)
            block = func.block(frame.block)
            state.steps += 1

            if frame.index < len(block.instructions):
                try:
                    result = self._exec_instruction(
                        state, frame, block.instructions[frame.index])
                except _DivisionByZero:
                    return self._finish(state, Outcome.CRASH,
                                        "division by zero")
                if result is not None:
                    return result
                continue

            term = block.terminator
            if isinstance(term, Jump):
                frame.block, frame.index = term.target, 0
                continue
            if isinstance(term, Halt):
                state.frames.clear()
                return _DONE
            if isinstance(term, Return):
                try:
                    value = self._value(state, frame, term.value)
                except _DivisionByZero:
                    return self._finish(state, Outcome.CRASH,
                                        "division by zero")
                state.frames.pop()
                if not state.frames:
                    return _DONE
                caller = state.frames[-1]
                call = program.function(caller.function) \
                    .block(caller.block).instructions[caller.index]
                if call.dst is not None:
                    caller.locals[call.dst] = value
                caller.index += 1
                continue
            if isinstance(term, Branch):
                try:
                    cond = self._value(state, frame, term.cond)
                except _DivisionByZero:
                    return self._finish(state, Outcome.CRASH,
                                        "division by zero")
                if isinstance(cond, Const):
                    taken = cond.value != 0
                    frame.block = term.then_block if taken else term.else_block
                    frame.index = 0
                    continue
                return ((0, frame.function, frame.block), cond)
            raise SymbolicError(f"unknown terminator {term!r}")

    def _exec_instruction(self, state: _SymState, frame: _SymFrame, instr,
                          ) -> Union[None, SymPath, _Fork]:
        program = self.program
        if isinstance(instr, Assign):
            frame.locals[instr.dst] = self._value(state, frame, instr.expr)
            frame.index += 1
            return None
        if isinstance(instr, StoreGlobal):
            state.globals[instr.name] = self._value(state, frame, instr.expr)
            frame.index += 1
            return None
        if isinstance(instr, LoadGlobal):
            frame.locals[instr.dst] = state.globals.get(instr.name, Const(0))
            frame.index += 1
            return None
        if isinstance(instr, Lock):
            if instr.lock_name in state.held_locks:
                return self._finish(state, Outcome.DEADLOCK,
                                    f"self-deadlock on {instr.lock_name!r}")
            state.held_locks.append(instr.lock_name)
            frame.index += 1
            return None
        if isinstance(instr, Unlock):
            if instr.lock_name not in state.held_locks:
                return self._finish(
                    state, Outcome.CRASH,
                    f"unlock of lock {instr.lock_name!r} not held")
            state.held_locks.remove(instr.lock_name)
            frame.index += 1
            return None
        if isinstance(instr, Crash):
            return self._finish(state, Outcome.CRASH, instr.message)
        if isinstance(instr, Syscall):
            frame.locals[instr.dst] = self._syscall(state, frame, instr)
            frame.index += 1
            return None
        if isinstance(instr, Call):
            if len(state.frames) >= self.limits.max_call_depth:
                return self._finish(state, Outcome.CRASH,
                                    "call depth exceeded")
            callee = program.function(instr.callee)
            locals_ = {}
            for param, arg in zip(callee.params, instr.args):
                locals_[param] = self._value(state, frame, arg)
            state.frames.append(_SymFrame(
                instr.callee, callee.entry, 0, locals_, instr.dst))
            return None
        if isinstance(instr, Assert):
            cond = self._value(state, frame, instr.cond)
            if isinstance(cond, Const):
                if cond.value != 0:
                    frame.index += 1
                    return None
                return self._finish(state, Outcome.ASSERT, instr.message)
            # Symbolic assert: fork like a branch; _take_branch resolves
            # via pending_assert instead of the block terminator.
            state.pending_assert = instr
            return ((0, frame.function, frame.block), cond)
        raise SymbolicError(f"unknown instruction {instr!r}")

    def _take_branch(self, state: _SymState, taken: bool) -> None:
        """Apply a decided direction to a state positioned at a fork."""
        frame = state.frames[-1]
        if state.pending_assert is not None:
            pending = state.pending_assert
            state.pending_assert = None
            if taken:
                frame.index += 1
            else:
                state.assert_failed = pending.message
                state.frames.clear()
            return
        func = self.program.function(frame.function)
        term = func.block(frame.block).terminator
        frame.block = term.then_block if taken else term.else_block
        frame.index = 0

    def _finish(self, state: _SymState, outcome: Outcome,
                message: Optional[str]) -> SymPath:
        if state.assert_failed is not None and outcome is Outcome.OK:
            outcome, message = Outcome.ASSERT, state.assert_failed
        example = dict(state.witness)
        for name, (lo, _hi) in self.program.inputs.items():
            example.setdefault(name, lo)
        return SymPath(
            decisions=tuple(state.decisions),
            condition=state.condition,
            outcome=outcome,
            failure_message=message,
            example_inputs=example,
            steps=state.steps,
        )

    # -- values ------------------------------------------------------------------

    def _value(self, state: _SymState, frame: _SymFrame, expr: Expr) -> Expr:
        resolved = fold(substitute(expr, frame.locals))
        for node in resolved.walk():
            if isinstance(node, BinOp) and node.op in ("//", "%"):
                if not isinstance(node.right, Const):
                    raise SymbolicError(
                        "symbolic denominator not supported; corpus"
                        " programs divide by constants only")
                if node.right.value == 0:
                    raise _DivisionByZero()
        return resolved

    def _syscall(self, state: _SymState, frame: _SymFrame,
                 instr: Syscall) -> Expr:
        state.syscall_counter += 1
        if self.symbolic_syscalls and instr.name in ("open", "read", "recv",
                                                     "write"):
            symbol = f"__sys{state.syscall_counter}"
            if instr.name == "open":
                self._domains[symbol] = (-1, 255)
            else:
                self._domains[symbol] = (-1, self._read_size)
            return Input(symbol)
        # Fault-free deterministic environment model (mirrors
        # Environment's non-faulty semantics).
        if instr.name == "open":
            # Mirror Environment: lowest free descriptor >= 3.
            fd = 3
            while fd in state.open_fds:
                fd += 1
            state.open_fds = state.open_fds + (fd,)
            return Const(fd)
        if instr.name in ("read", "recv", "write"):
            if len(instr.args) > 1:
                requested = self._value(state, frame, instr.args[1])
            elif instr.args:
                requested = self._value(state, frame, instr.args[0])
            else:
                requested = Const(0)
            if isinstance(requested, Const):
                return Const(max(0, requested.value))
            return requested  # symbolic size passes through unfaulted
        if instr.name == "close":
            if instr.args:
                fd = self._value(state, frame, instr.args[0])
                if isinstance(fd, Const):
                    if fd.value in state.open_fds:
                        state.open_fds = tuple(
                            f for f in state.open_fds if f != fd.value)
                        return Const(0)
                    return Const(-1)
            # Symbolic descriptor: model success, leave the table alone.
            return Const(0)
        if instr.name == "time":
            state.clock += 1
            return Const(state.clock)
        return Const(0)


class _DivisionByZero(Exception):
    """Internal: concrete division by zero on a symbolic path."""
