"""Collective constraint recycling: a canonicalizing solver cache.

The paper's thesis is that execution by-products should be *recycled
across the collective* (Sec. 4 quantifies exactly this workload:
constraint-solving throughput). This module is the store those
by-products land in — a deterministic cache of solved constraint
*slices* shared between pods, shards, and rounds.

**Canonical keys.** A cache key is the structural hash of a set of
conjuncts *up to symbol renaming*: conjuncts are sorted by their
symbol-masked skeleton, then symbols are renamed to dense indices by
first occurrence over that sorted order. Two path conditions that
differ only in which input names they constrain (``__sys0 > 4`` vs
``__sys1 > 4``) share one entry. Key equality implies α-equivalence,
so a hit is always sound; ordering ties between equal skeletons can at
worst *miss* a hit, never fabricate one.

**Slices.** Conditions are decomposed into independent slices — the
connected components of the constraint/symbol graph — so a cached
sub-condition hits even when the full conjunction is new, and a single
cached-UNSAT slice proves a brand-new conjunction UNSAT with no search.

**Entries and validity.** An entry is either ``("sat", values)`` — a
model for the slice, values aligned with the key's canonical symbol
indices — or ``("unsat", domains)`` — the per-symbol domains the slice
was refuted under. A SAT entry is usable when every stored value lies
inside the *current* domain of the corresponding symbol (satisfaction
transfers structurally under renaming; the domain check is all that is
left). An UNSAT entry is usable when every current domain is a subset
of the stored one (shrinking domains cannot create solutions).

**Determinism.** Shard caches are private (no locks, no shared
mutation); they export every *(key, entry)* fact they produce exactly
once, and the platform folds round deltas through
:meth:`ConstraintCache.canonical_order` — a content sort that is
independent of how runs were sharded — before merging first-writer-wins
into the hive cache. Redistributed facts are remembered so shards never
re-export them. The hive cache therefore evolves identically on the
serial, thread, and process backends at a fixed seed, which is what
keeps cache-enabled runs bit-identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, Iterable, List, Mapping, NamedTuple, Optional,
    Sequence, Set, Tuple,
)

from repro.config import BaseReport
from repro.obs import Instrumented
from repro.progmodel.ir import Expr

__all__ = [
    "SolverCacheStats", "ConstraintCache", "ConditionSlice",
    "canonical_slice_key", "condition_slices", "conjunct_slices",
    "SliceMemo", "build_slice_memos", "extend_slice_memos",
]

#: One conjunct: (folded expression, direction taken).
Conjunct = Tuple[Expr, bool]
#: Canonical keys are nested tuples of primitives — hashable, picklable,
#: and with a deterministic ``repr`` used for content ordering.
CanonicalKey = Tuple
#: ("sat", values) or ("unsat", domains), aligned to canonical indices.
CacheEntry = Tuple[str, Tuple]
#: What shards ship back and the hive redistributes.
CacheDelta = List[Tuple[CanonicalKey, CacheEntry]]

Domains = Mapping[str, Tuple[int, int]]


# -- canonicalization ---------------------------------------------------------

def _masked(key: object) -> object:
    """The key's skeleton: every Input name replaced by a placeholder."""
    if isinstance(key, tuple):
        if key and key[0] == "input":
            return ("input", "?")
        return tuple(_masked(part) for part in key)
    return key


def _renamed(key: object, renaming: Mapping[str, int]) -> object:
    """The key with Input names replaced by canonical indices."""
    if isinstance(key, tuple):
        if key and key[0] == "input":
            return ("input", renaming[key[1]])
        return tuple(_renamed(part, renaming) for part in key)
    return key


def _key_symbols(key: object, out: List[str]) -> None:
    """Append first-seen Input names in key order."""
    if isinstance(key, tuple):
        if key and key[0] == "input":
            if key[1] not in out:
                out.append(key[1])
            return
        for part in key:
            _key_symbols(part, out)


def _skeleton_of(expr: Expr) -> str:
    """``repr(_masked(expr.key()))``, memoized on the (immutable) node.

    The skeleton string is the sort key of every canonicalization; with
    interning (``repro.symbolic.expr``) structurally repeated conjuncts
    share one node and pay for the mask walk once.
    """
    try:
        return expr._skeleton
    except AttributeError:
        skeleton = expr._skeleton = repr(_masked(expr.key()))
        return skeleton


def canonical_slice_key(
        conjuncts: Sequence[Conjunct]) -> Tuple[CanonicalKey, Tuple[str, ...]]:
    """Canonicalize one slice under symbol renaming.

    Returns ``(key, order)``: ``key`` is identical for α-equivalent
    conjunct sets and ``order[i]`` names the actual symbol bound to
    canonical index ``i`` in *this* condition.
    """
    tagged = [(_skeleton_of(expr), truth, expr.key())
              for expr, truth in conjuncts]
    tagged.sort(key=lambda item: (item[0], item[1]))
    order: List[str] = []
    for _skeleton, _truth, key_tuple in tagged:
        _key_symbols(key_tuple, order)
    renaming = {name: index for index, name in enumerate(order)}
    key = tuple((_renamed(key_tuple, renaming), truth)
                for _skeleton, truth, key_tuple in tagged)
    return key, tuple(order)


# -- slicing ------------------------------------------------------------------

@dataclass
class ConditionSlice:
    """One connected component of the constraint/symbol graph."""

    conjuncts: List[Conjunct]
    symbols: Tuple[str, ...]          # first-seen order within the slice
    key: CanonicalKey = ()
    order: Tuple[str, ...] = ()       # canonical index -> symbol name

    def __post_init__(self) -> None:
        if not self.key:
            self.key, self.order = canonical_slice_key(self.conjuncts)


def conjunct_slices(conjuncts: Sequence[Conjunct]) -> List[ConditionSlice]:
    """Split conjuncts into independent slices (union-find over symbols).

    Constraints sharing no symbol can be solved separately and their
    models combined; constant conjuncts (no symbols) form one slice of
    their own. Slices come back ordered by first conjunct position.
    """
    parent: Dict[str, str] = {}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:          # path compression
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    per_conjunct: List[Tuple[str, ...]] = []
    for expr, _truth in conjuncts:
        names = expr.inputs()
        per_conjunct.append(names)
        for name in names:
            parent.setdefault(name, name)
        for other in names[1:]:
            union(names[0], other)

    groups: Dict[str, ConditionSlice] = {}
    constant: Optional[ConditionSlice] = None
    out: List[ConditionSlice] = []
    for index, (conjunct, names) in enumerate(zip(conjuncts, per_conjunct)):
        if not names:
            if constant is None:
                constant = ConditionSlice([conjunct], ())
                out.append(constant)
            else:
                constant.conjuncts.append(conjunct)
            continue
        root = find(names[0])
        piece = groups.get(root)
        if piece is None:
            piece = ConditionSlice([conjunct], names)
            groups[root] = piece
            out.append(piece)
        else:
            piece.conjuncts.append(conjunct)
            fresh = tuple(n for n in names if n not in piece.symbols)
            piece.symbols = piece.symbols + fresh
    # Keys were computed from the partial conjunct lists during
    # construction — recompute now the components are complete.
    for piece in out:
        piece.key, piece.order = canonical_slice_key(piece.conjuncts)
    return out


def condition_slices(condition) -> List[ConditionSlice]:
    """Slices of a :class:`~repro.symbolic.pathcond.PathCondition`.

    Path conditions carry incrementally maintained slice memos
    (:class:`SliceMemo`, updated per conjunct by
    :meth:`~repro.symbolic.pathcond.PathCondition.extended`), so this
    is O(slices) — the canonical keys were computed when each slice
    last changed, not re-derived per probe. Conditions without memos
    (plain duck-typed carriers) fall back to the batch grouping.
    """
    memos = getattr(condition, "slice_memos", None)
    if memos is None:
        return conjunct_slices(condition.constraints)
    return [ConditionSlice(list(memo.conjuncts), memo.symbols,
                           key=memo.key, order=memo.order)
            for memo in memos()]


# -- incremental slice memos --------------------------------------------------

class SliceMemo(NamedTuple):
    """One immutable, fully canonicalized slice of a path condition.

    ``positions`` are the conjunct indices (in condition order) the
    slice covers; memos are shared structurally between a condition and
    its :meth:`extended` children, so extending a condition re-keys
    only the slice(s) the new conjunct touches.
    """

    positions: Tuple[int, ...]
    conjuncts: Tuple[Conjunct, ...]
    symbols: Tuple[str, ...]
    symbol_set: FrozenSet[str]
    key: CanonicalKey
    order: Tuple[str, ...]


def _make_memo(positions: Tuple[int, ...],
               conjuncts: Tuple[Conjunct, ...],
               symbols: Tuple[str, ...]) -> SliceMemo:
    key, order = canonical_slice_key(conjuncts)
    return SliceMemo(positions, conjuncts, symbols, frozenset(symbols),
                     key, order)


def build_slice_memos(
        conjuncts: Sequence[Conjunct]) -> Tuple[SliceMemo, ...]:
    """Batch construction (conditions not grown via ``extended``)."""
    memos: Tuple[SliceMemo, ...] = ()
    for position, conjunct in enumerate(conjuncts):
        memos = extend_slice_memos(memos, position, conjunct)
    return memos


def extend_slice_memos(memos: Tuple[SliceMemo, ...], position: int,
                       conjunct: Conjunct) -> Tuple[SliceMemo, ...]:
    """Memos after appending ``conjunct`` at ``position``.

    Equivalent to regrouping from scratch — the new conjunct either
    starts a fresh slice, joins the one slice it shares symbols with,
    or fuses several — but only the affected slice is re-keyed; every
    untouched memo is shared with the parent as-is. The list stays
    ordered by first conjunct position, matching
    :func:`conjunct_slices` exactly.
    """
    expr, _truth = conjunct
    names = expr.inputs()
    if not names:
        # Constant conjuncts pool into one dedicated slice.
        for index, memo in enumerate(memos):
            if not memo.symbols:
                merged = _make_memo(memo.positions + (position,),
                                    memo.conjuncts + (conjunct,), ())
                return memos[:index] + (merged,) + memos[index + 1:]
        return memos + (_make_memo((position,), (conjunct,), ()),)
    hits = [index for index, memo in enumerate(memos)
            if not memo.symbol_set.isdisjoint(names)]
    if not hits:
        return memos + (_make_memo((position,), (conjunct,), names),)
    pairs: List[Tuple[int, Conjunct]] = []
    for index in hits:
        pairs.extend(zip(memos[index].positions, memos[index].conjuncts))
    pairs.append((position, conjunct))
    pairs.sort(key=lambda pair: pair[0])
    symbols: List[str] = []
    seen: Set[str] = set()
    for _position, (piece_expr, _piece_truth) in pairs:
        for name in piece_expr.inputs():
            if name not in seen:
                seen.add(name)
                symbols.append(name)
    merged = _make_memo(tuple(p for p, _ in pairs),
                        tuple(c for _, c in pairs), tuple(symbols))
    hit_set = set(hits)
    out = [memo for index, memo in enumerate(memos)
           if index not in hit_set]
    out.append(merged)
    out.sort(key=lambda memo: memo.positions[0])
    return tuple(out)


# -- the cache ----------------------------------------------------------------

@dataclass
class SolverCacheStats(BaseReport):
    """Reuse accounting, by tier."""

    hits_exact: int = 0     # tier 1: stored model valid as-is
    hits_model: int = 0     # tier 2: sub-slice model rehydrated
    hits_unsat: int = 0     # tier 3: UNSAT by subsumption, zero search
    misses: int = 0
    stores: int = 0
    merged: int = 0         # entries adopted from other caches
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.hits_exact + self.hits_model + self.hits_unsat

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        doc = super().as_dict()
        doc["hits"] = self.hits
        doc["hit_rate"] = round(self.hit_rate(), 6)
        return doc


class ConstraintCache(Instrumented):
    """Content-keyed store of solved constraint slices.

    First writer wins: once a key has an entry it never changes, so
    lookups are stable regardless of later traffic. Capacity is bounded
    with FIFO eviction over insertion order (insertion order is itself
    deterministic, so eviction is too).

    Export protocol: every *(key, entry)* fact this cache originates is
    logged exactly once for :meth:`export_delta`; facts adopted via
    :meth:`merge` are never re-exported (their keys are marked *known*),
    which keeps round deltas free of echoes. The union of shard exports
    in a round is therefore a function of the run plan alone — not of
    how runs were sharded — and :meth:`canonical_order` gives it one
    backend-invariant ordering.
    """

    obs_namespace = "symbolic.cache"

    def __init__(self, max_entries: int = 8192):
        self.max_entries = max_entries
        self.stats = SolverCacheStats()
        self._entries: Dict[CanonicalKey, CacheEntry] = {}
        self._known: Set[CanonicalKey] = set()       # merged-in keys
        self._exported: Set[Tuple[str, str]] = set()  # (key, entry) reprs
        self._log: List[Tuple[CanonicalKey, CacheEntry]] = []
        self._cursor = 0
        self._obs_hits = self.obs_counter("hits")
        self._obs_misses = self.obs_counter("misses")
        self._obs_subsumed = self.obs_counter("subsumed")
        self._obs_evicted = self.obs_counter("evicted")

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self):
        """Iterate ``(key, entry)`` pairs (for fingerprints/snapshots)."""
        return iter(self._entries.items())

    # -- probes (the three reuse tiers) ---------------------------------------

    def probe_sat(self, key: CanonicalKey, order: Sequence[str],
                  domains: Domains) -> Optional[Dict[str, int]]:
        """Tier 1: a stored model, renamed back, if it fits ``domains``."""
        model = self.peek_sat(key, order, domains)
        if model is not None:
            self.stats.hits_exact += 1
            self._obs_hits.inc()
        return model

    def peek_sat(self, key: CanonicalKey, order: Sequence[str],
                 domains: Domains) -> Optional[Dict[str, int]]:
        """Like :meth:`probe_sat` but uncounted (rehydration sub-lookups)."""
        entry = self._entries.get(key)
        if entry is None or entry[0] != "sat":
            return None
        values = entry[1]
        model: Dict[str, int] = {}
        for index, name in enumerate(order):
            value = values[index]
            lo, hi = domains[name]
            if not lo <= value <= hi:
                return None
            model[name] = value
        return model

    def probe_unsat(self, key: CanonicalKey, order: Sequence[str],
                    domains: Domains) -> bool:
        """Tier 3: UNSAT by subsumption — every current domain must sit
        inside the domain the slice was refuted under."""
        entry = self._entries.get(key)
        if entry is None or entry[0] != "unsat":
            return False
        stored = entry[1]
        for index, name in enumerate(order):
            lo, hi = domains[name]
            stored_lo, stored_hi = stored[index]
            if lo < stored_lo or hi > stored_hi:
                return False
        self.stats.hits_unsat += 1
        self._obs_subsumed.inc()
        return True

    def note_rehydrated(self) -> None:
        """Tier 2 hit: a sub-slice model checked out on the extension."""
        self.stats.hits_model += 1
        self._obs_hits.inc()

    def note_miss(self) -> None:
        self.stats.misses += 1
        self._obs_misses.inc()

    # -- stores ---------------------------------------------------------------

    def store_sat(self, key: CanonicalKey, order: Sequence[str],
                  model: Mapping[str, int]) -> None:
        values = tuple(model[name] for name in order)
        self._store(key, ("sat", values))

    def store_unsat(self, key: CanonicalKey, order: Sequence[str],
                    domains: Domains) -> None:
        bounds = tuple(tuple(domains[name]) for name in order)
        self._store(key, ("unsat", bounds))

    def _store(self, key: CanonicalKey, entry: CacheEntry) -> None:
        if key not in self._known:
            pair = (repr(key), repr(entry))
            if pair not in self._exported:
                self._exported.add(pair)
                self._log.append((key, entry))
                self.stats.stores += 1
        if key not in self._entries:
            self._insert(key, entry)

    def _insert(self, key: CanonicalKey, entry: CacheEntry) -> None:
        while len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.stats.evictions += 1
            self._obs_evicted.inc()
        self._entries[key] = entry

    # -- collective sharing ---------------------------------------------------

    def merge(self, delta: CacheDelta, reshare: bool = False) -> int:
        """Adopt external facts, first-writer-wins; returns entries added.

        ``reshare=True`` (hive side) re-logs adopted entries so the next
        :meth:`export_delta` redistributes them; the default (shard
        side) marks their keys known so they are never echoed back.
        """
        added = 0
        for key, entry in delta:
            self._known.add(key)
            self._exported.add((repr(key), repr(entry)))
            if key not in self._entries:
                self._insert(key, entry)
                added += 1
                if reshare:
                    self._log.append((key, entry))
        self.stats.merged += added
        return added

    def export_delta(self) -> CacheDelta:
        """Facts originated (or reshared) since the last export."""
        delta = self._log[self._cursor:]
        self._cursor = len(self._log)
        return list(delta)

    def shared_since(self, cursor: int) -> Tuple[CacheDelta, int]:
        """Log tail from ``cursor`` plus the new cursor (per-peer export
        for the cooperative coordinator, which seeds many workers from
        one cache)."""
        return list(self._log[cursor:]), len(self._log)

    @staticmethod
    def canonical_order(deltas: Iterable[CacheDelta]) -> CacheDelta:
        """Fold per-shard deltas into one backend-invariant delta.

        Content-sorts the union by ``(key, entry)`` repr and keeps the
        first entry per key, so the result does not depend on how runs
        were split across shards or which shard reported first.
        """
        unique: Dict[Tuple[str, str], Tuple[CanonicalKey, CacheEntry]] = {}
        for delta in deltas:
            for key, entry in delta:
                unique.setdefault((repr(key), repr(entry)), (key, entry))
        out: CacheDelta = []
        seen: Set[str] = set()
        for (key_repr, _entry_repr) in sorted(unique):
            if key_repr in seen:
                continue
            seen.add(key_repr)
            out.append(unique[(key_repr, _entry_repr)])
        return out
