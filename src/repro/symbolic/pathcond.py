"""Path conditions: ordered conjunctions of branch constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Mapping, Optional, Tuple

from repro.progmodel.ir import Expr
from repro.symbolic.expr import eval_concrete

__all__ = ["PathCondition"]


@dataclass
class PathCondition:
    """A conjunction of (expression, expected_truth) constraints.

    Each entry records one symbolic branch decision: the folded branch
    condition and the direction taken. The condition is satisfied by an
    assignment iff every expression's truthiness matches its direction.

    Conditions are persistent: :meth:`extended` shares the parent's
    derived state (symbol tuple, conjunct identity set) instead of
    re-walking every constraint, and re-asserting a conjunct already
    present returns the condition unchanged — loop branches re-take the
    same decision with the same folded expression every iteration, and
    the duplicate would only inflate virtual solve cost.
    """

    constraints: List[Tuple[Expr, bool]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._symbols: Optional[Tuple[str, ...]] = None
        self._conjunct_keys: Optional[FrozenSet[Tuple]] = None

    def extended(self, expr: Expr, truth: bool) -> "PathCondition":
        """A new path condition with one more conjunct (persistent)."""
        key = (expr.key(), truth)
        if key in self._keys():
            return self
        child = PathCondition(constraints=self.constraints + [(expr, truth)])
        parent_symbols = self.symbols()
        fresh = tuple(name for name in expr.inputs()
                      if name not in parent_symbols)
        child._symbols = parent_symbols + fresh
        child._conjunct_keys = self._keys() | {key}
        return child

    def __len__(self) -> int:
        return len(self.constraints)

    def satisfied_by(self, env: Mapping[str, int]) -> bool:
        """Check an assignment. Division errors count as unsatisfied
        (the assignment would have crashed before completing the path)."""
        for expr, truth in self.constraints:
            try:
                value = eval_concrete(expr, env)
            except ZeroDivisionError:
                return False
            if bool(value) != truth:
                return False
        return True

    def symbols(self) -> Tuple[str, ...]:
        """All symbol (Input) names referenced, in first-seen order."""
        if self._symbols is None:
            names: List[str] = []
            for expr, _truth in self.constraints:
                for name in expr.inputs():
                    if name not in names:
                        names.append(name)
            self._symbols = tuple(names)
        return self._symbols

    def _keys(self) -> FrozenSet[Tuple]:
        if self._conjunct_keys is None:
            self._conjunct_keys = frozenset(
                (expr.key(), truth) for expr, truth in self.constraints)
        return self._conjunct_keys
