"""Path conditions: ordered conjunctions of branch constraints."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import FrozenSet, List, Mapping, Optional, Tuple

from repro.progmodel.ir import Expr
from repro.symbolic.cache import (
    SliceMemo, build_slice_memos, extend_slice_memos,
)
from repro.symbolic.expr import eval_concrete

__all__ = ["PathCondition"]

#: Digest of the empty condition (any fixed constant works; blake2b of
#: an empty payload keeps it content-derived like every other id).
_EMPTY_DIGEST = hashlib.blake2b(b"", digest_size=16).hexdigest()


def _extend_digest(parent: str, key: Tuple) -> str:
    payload = parent.encode("ascii") + repr(key).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass
class PathCondition:
    """A conjunction of (expression, expected_truth) constraints.

    Each entry records one symbolic branch decision: the folded branch
    condition and the direction taken. The condition is satisfied by an
    assignment iff every expression's truthiness matches its direction.

    Conditions are persistent: :meth:`extended` shares the parent's
    derived state (symbol tuple, conjunct identity set, slice memos,
    structural digest) instead of re-walking every constraint, and
    re-asserting a conjunct already present returns the condition
    unchanged — loop branches re-take the same decision with the same
    folded expression every iteration, and the duplicate would only
    inflate virtual solve cost.

    The incremental derived state is what makes cache probes cheap:
    :meth:`slice_memos` holds fully canonicalized slices updated in
    O(slice touched) per conjunct, so
    :func:`repro.symbolic.cache.condition_slices` never re-sorts or
    renumbers the whole condition, and :meth:`digest` is a structural
    fingerprint folded forward in O(1) per conjunct.
    """

    constraints: List[Tuple[Expr, bool]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._symbols: Optional[Tuple[str, ...]] = None
        self._conjunct_keys: Optional[FrozenSet[Tuple]] = None
        self._slices: Optional[Tuple[SliceMemo, ...]] = None
        self._digest: Optional[str] = None

    def extended(self, expr: Expr, truth: bool) -> "PathCondition":
        """A new path condition with one more conjunct (persistent)."""
        key = (expr.key(), truth)
        if key in self._keys():
            return self
        child = PathCondition(constraints=self.constraints + [(expr, truth)])
        parent_symbols = self.symbols()
        fresh = tuple(name for name in expr.inputs()
                      if name not in parent_symbols)
        child._symbols = parent_symbols + fresh
        child._conjunct_keys = self._keys() | {key}
        child._slices = extend_slice_memos(
            self.slice_memos(), len(self.constraints), (expr, truth))
        child._digest = _extend_digest(self.digest(), key)
        return child

    def __len__(self) -> int:
        return len(self.constraints)

    def satisfied_by(self, env: Mapping[str, int]) -> bool:
        """Check an assignment. Division errors count as unsatisfied
        (the assignment would have crashed before completing the path)."""
        for expr, truth in self.constraints:
            try:
                value = eval_concrete(expr, env)
            except ZeroDivisionError:
                return False
            if bool(value) != truth:
                return False
        return True

    def symbols(self) -> Tuple[str, ...]:
        """All symbol (Input) names referenced, in first-seen order."""
        if self._symbols is None:
            names: List[str] = []
            for expr, _truth in self.constraints:
                for name in expr.inputs():
                    if name not in names:
                        names.append(name)
            self._symbols = tuple(names)
        return self._symbols

    def slice_memos(self) -> Tuple[SliceMemo, ...]:
        """Canonicalized connected-component slices, ordered by first
        conjunct position — maintained incrementally by :meth:`extended`,
        rebuilt once for conditions constructed from a raw list."""
        if self._slices is None:
            self._slices = build_slice_memos(self.constraints)
        return self._slices

    def digest(self) -> str:
        """Structural fingerprint of the conjunct sequence.

        Folded forward one conjunct at a time (order-sensitive, like
        the condition itself); two conditions built from the same
        branch decisions share it, regardless of how their expression
        objects were derived.
        """
        if self._digest is None:
            digest = _EMPTY_DIGEST
            for expr, truth in self.constraints:
                digest = _extend_digest(digest, (expr.key(), truth))
            self._digest = digest
        return self._digest

    def _keys(self) -> FrozenSet[Tuple]:
        if self._conjunct_keys is None:
            self._conjunct_keys = frozenset(
                (expr.key(), truth) for expr, truth in self.constraints)
        return self._conjunct_keys
