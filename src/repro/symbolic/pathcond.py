"""Path conditions: ordered conjunctions of branch constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Tuple

from repro.progmodel.ir import Expr
from repro.symbolic.expr import eval_concrete

__all__ = ["PathCondition"]


@dataclass
class PathCondition:
    """A conjunction of (expression, expected_truth) constraints.

    Each entry records one symbolic branch decision: the folded branch
    condition and the direction taken. The condition is satisfied by an
    assignment iff every expression's truthiness matches its direction.
    """

    constraints: List[Tuple[Expr, bool]] = field(default_factory=list)

    def extended(self, expr: Expr, truth: bool) -> "PathCondition":
        """A new path condition with one more conjunct (persistent)."""
        return PathCondition(constraints=self.constraints + [(expr, truth)])

    def __len__(self) -> int:
        return len(self.constraints)

    def satisfied_by(self, env: Mapping[str, int]) -> bool:
        """Check an assignment. Division errors count as unsatisfied
        (the assignment would have crashed before completing the path)."""
        for expr, truth in self.constraints:
            try:
                value = eval_concrete(expr, env)
            except ZeroDivisionError:
                return False
            if bool(value) != truth:
                return False
        return True

    def symbols(self) -> Tuple[str, ...]:
        """All symbol (Input) names referenced, in first-seen order."""
        names: List[str] = []
        for expr, _truth in self.constraints:
            for name in expr.inputs():
                if name not in names:
                    names.append(name)
        return tuple(names)
