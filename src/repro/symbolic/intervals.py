"""Interval propagation over path conditions.

A cheap, sound pre-pass for the enumeration solver: constraints whose
shape is ``<expr over one symbol> cmp <const>`` (after folding, the
overwhelmingly common shape in corpus path conditions) narrow that
symbol's domain; an empty domain proves unsatisfiability without any
search, and a narrowed domain shrinks the enumeration space
multiplicatively.

The propagation is deliberately conservative: any constraint it cannot
interpret precisely is skipped (left to enumeration), so narrowed
domains always over-approximate the true solution set — the solver
stays complete.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.progmodel.ir import BinOp, Const, Expr, Input, UnOp
from repro.symbolic.pathcond import PathCondition

__all__ = ["Interval", "narrow_domains", "UNSAT"]

Interval = Tuple[int, int]

# Sentinel: propagation proved the condition unsatisfiable.
UNSAT = "unsat"

_NEGATE = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=",
           ">=": "<"}


def _single_symbol(expr: Expr) -> Optional[str]:
    names = expr.inputs()
    return names[0] if len(names) == 1 else None


def _invert_linear(expr: Expr, lo: int, hi: int,
                   ) -> Optional[Tuple[str, int, int]]:
    """Given ``lo <= expr <= hi``, reduce to bounds on a bare symbol.

    Handles the invertible single-symbol chains the corpus emits:
    ``x``, ``x + c``, ``x - c``, ``c - x``, ``x * c`` (c > 0), ``-x``.
    Returns None for anything else (e.g. ``x % c``, multi-occurrence).
    """
    if isinstance(expr, Input):
        return (expr.name, lo, hi)
    if isinstance(expr, UnOp) and expr.op == "neg":
        return _invert_linear(expr.operand, -hi, -lo)
    if isinstance(expr, BinOp):
        left, right, op = expr.left, expr.right, expr.op
        if isinstance(right, Const):
            c = right.value
            if op == "+":
                return _invert_linear(left, lo - c, hi - c)
            if op == "-":
                return _invert_linear(left, lo + c, hi + c)
            if op == "*" and c > 0:
                # ceil/floor division keeps the bound sound.
                return _invert_linear(left, -((-lo) // c), hi // c)
        if isinstance(left, Const):
            c = left.value
            if op == "+":
                return _invert_linear(right, lo - c, hi - c)
            if op == "-":   # c - y in [lo, hi]  =>  y in [c - hi, c - lo]
                return _invert_linear(right, c - hi, c - lo)
            if op == "*" and c > 0:
                return _invert_linear(right, -((-lo) // c), hi // c)
    return None


_BIG = 10 ** 12


def _bounds_for(op: str, value: int) -> Optional[Tuple[int, int]]:
    """The interval ``expr`` must lie in for ``expr op value`` to hold."""
    if op == "==":
        return (value, value)
    if op == "<":
        return (-_BIG, value - 1)
    if op == "<=":
        return (-_BIG, value)
    if op == ">":
        return (value + 1, _BIG)
    if op == ">=":
        return (value, _BIG)
    return None  # "!=" punches a hole, not an interval — skip


def narrow_domains(condition: PathCondition,
                   domains: Mapping[str, Interval],
                   ):
    """Return narrowed domains for the condition's symbols, or UNSAT.

    Only the symbols the condition mentions appear in the result;
    unconstrained or uninterpretable symbols keep their input domain.
    """
    narrowed: Dict[str, Interval] = {
        name: domains[name] for name in condition.symbols()}
    for expr, truth in condition.constraints:
        if not isinstance(expr, BinOp):
            continue
        op = expr.op
        if op not in ("==", "!=", "<", "<=", ">", ">="):
            continue
        if not truth:
            op = _NEGATE[op]
        # Normalise to <single-symbol expr> op <const>.
        if isinstance(expr.right, Const):
            lhs, value = expr.left, expr.right.value
        elif isinstance(expr.left, Const):
            # c op y  <=>  y op' c with the comparison mirrored.
            mirror = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                      "==": "==", "!=": "!="}
            lhs, value, op = expr.right, expr.left.value, mirror[op]
        else:
            continue
        symbol = _single_symbol(lhs)
        if symbol is None or symbol not in narrowed:
            continue
        target = _bounds_for(op, value)
        if target is None:
            continue
        reduced = _invert_linear(lhs, target[0], target[1])
        if reduced is None:
            continue
        name, lo, hi = reduced
        if name != symbol:
            continue
        current_lo, current_hi = narrowed[symbol]
        narrowed[symbol] = (max(current_lo, lo), min(current_hi, hi))
        if narrowed[symbol][0] > narrowed[symbol][1]:
            return UNSAT
    return narrowed
