"""The fleet: SoftBorg across an ecosystem of programs.

The paper's vision is not one program but *all* end-user software
("ideally every instance of a program P executing anywhere in the
world"). A :class:`Fleet` runs one closed loop per program — each with
its own pods, hive, tree, and fixes — and aggregates the ecosystem
view: total bugs exterminated, residual failure mass, and which
programs' proofs completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import BaseReport
from repro.obs import Instrumented
from repro.platform import PlatformConfig, PlatformReport, SoftBorgPlatform
from repro.workloads.scenarios import Scenario

__all__ = ["FleetProgramResult", "FleetReport", "Fleet"]


@dataclass
class FleetProgramResult(BaseReport):
    """One program's outcome within the fleet."""

    program_name: str
    report: PlatformReport
    bugs_seeded: int
    bugs_seen: int
    bugs_fixed: int
    final_version: int

    @property
    def exterminated(self) -> bool:
        """Every *manifested* bug got fixed (latent never-seen bugs do
        not count against the loop — nothing reported them)."""
        return self.bugs_seen > 0 and self.bugs_seen == self.bugs_fixed

    @property
    def preempted(self) -> bool:
        """A fix deployed although no user ever saw a failure: the
        pattern (e.g. a lock-order cycle) was diagnosed from healthy
        executions' by-products — the collective fixed the bug before
        it hurt anyone."""
        return self.bugs_seen == 0 and bool(self.report.fixes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "program_name": self.program_name,
            "bugs_seeded": self.bugs_seeded,
            "bugs_seen": self.bugs_seen,
            "bugs_fixed": self.bugs_fixed,
            "final_version": self.final_version,
            "exterminated": self.exterminated,
            "preempted": self.preempted,
            "report": self.report.as_dict(),
        }


@dataclass
class FleetReport(BaseReport):
    """Ecosystem-wide aggregation."""

    programs: List[FleetProgramResult] = field(default_factory=list)

    @property
    def total_executions(self) -> int:
        return sum(p.report.total_executions for p in self.programs)

    @property
    def total_failures(self) -> int:
        return sum(p.report.total_failures for p in self.programs)

    @property
    def total_fixes(self) -> int:
        return sum(len(p.report.fixes) for p in self.programs)

    @property
    def programs_with_failures(self) -> int:
        return sum(1 for p in self.programs if p.bugs_seen > 0)

    @property
    def programs_exterminated(self) -> int:
        return sum(1 for p in self.programs if p.exterminated)

    @property
    def programs_preempted(self) -> int:
        return sum(1 for p in self.programs if p.preempted)

    def residual_failure_rate(self, last_rounds: int = 3) -> float:
        """Failures per 1k executions across the fleet's final rounds."""
        executions = 0
        failures = 0
        for program in self.programs:
            for stats in program.report.rounds[-last_rounds:]:
                executions += stats.executions
                failures += stats.failures
        return 1000.0 * failures / executions if executions else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "programs": [p.as_dict() for p in self.programs],
            "total_executions": self.total_executions,
            "total_failures": self.total_failures,
            "total_fixes": self.total_fixes,
            "programs_with_failures": self.programs_with_failures,
            "programs_exterminated": self.programs_exterminated,
            "programs_preempted": self.programs_preempted,
            "residual_failure_rate": self.residual_failure_rate(),
        }


class Fleet(Instrumented):
    """Runs the closed loop for every scenario, one hive each."""

    obs_namespace = "fleet"

    def __init__(self, scenarios: Sequence[Scenario],
                 config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self.validate()
        self.platforms = [SoftBorgPlatform(scenario, self._config_for(
            scenario)) for scenario in scenarios]
        self.report: Optional[FleetReport] = None
        self._obs_programs = self.obs_counter("programs_run")

    # -- the shared config/report surface -----------------------------------

    @property
    def seed(self) -> int:
        return self.config.seed

    def validate(self) -> None:
        """Same contract as the platform configs: raise ConfigError."""
        self.config.validate()

    def snapshot(self) -> Dict[str, object]:
        """Unified fleet state: config, aggregate report, metrics."""
        return {
            "config": self.config.as_dict(),
            "execution": {
                "backend": self.config.resolved_backend(),
                "workers": self.config.resolved_workers(),
                "batch_max_traces": self.config.batch_max_traces,
            },
            "report": self.report.as_dict() if self.report else None,
            "obs": self.obs.snapshot(),
        }

    def _config_for(self, scenario: Scenario) -> PlatformConfig:
        import dataclasses
        # Proofs need the symbolic oracle; multi-threaded programs run
        # without them (partial proofs only), as the hive would.
        if len(scenario.program.threads) > 1 and self.config.enable_proofs:
            return dataclasses.replace(self.config, enable_proofs=False)
        return self.config

    def run(self) -> FleetReport:
        fleet_report = FleetReport()
        for platform in self.platforms:
            report = platform.run()
            self._obs_programs.inc()
            scenario = platform.scenario
            seen = report.density.bugs_seen
            fixed = report.density.bugs_fixed & seen
            fleet_report.programs.append(FleetProgramResult(
                program_name=scenario.program.name,
                report=report,
                bugs_seeded=len(scenario.bugs),
                bugs_seen=len(seen),
                bugs_fixed=len(fixed),
                final_version=platform.hive.program.version,
            ))
        self.report = fleet_report
        return fleet_report
