"""The fleet: SoftBorg across an ecosystem of programs.

The paper's vision is not one program but *all* end-user software
("ideally every instance of a program P executing anywhere in the
world"). A :class:`Fleet` runs one closed loop per program — each with
its own pods, hive, tree, and fixes — and aggregates the ecosystem
view: total bugs exterminated, residual failure mass, and which
programs' proofs completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.platform import PlatformConfig, PlatformReport, SoftBorgPlatform
from repro.workloads.scenarios import Scenario

__all__ = ["FleetProgramResult", "FleetReport", "Fleet"]


@dataclass
class FleetProgramResult:
    """One program's outcome within the fleet."""

    program_name: str
    report: PlatformReport
    bugs_seeded: int
    bugs_seen: int
    bugs_fixed: int
    final_version: int

    @property
    def exterminated(self) -> bool:
        """Every *manifested* bug got fixed (latent never-seen bugs do
        not count against the loop — nothing reported them)."""
        return self.bugs_seen > 0 and self.bugs_seen == self.bugs_fixed

    @property
    def preempted(self) -> bool:
        """A fix deployed although no user ever saw a failure: the
        pattern (e.g. a lock-order cycle) was diagnosed from healthy
        executions' by-products — the collective fixed the bug before
        it hurt anyone."""
        return self.bugs_seen == 0 and bool(self.report.fixes)


@dataclass
class FleetReport:
    """Ecosystem-wide aggregation."""

    programs: List[FleetProgramResult] = field(default_factory=list)

    @property
    def total_executions(self) -> int:
        return sum(p.report.total_executions for p in self.programs)

    @property
    def total_failures(self) -> int:
        return sum(p.report.total_failures for p in self.programs)

    @property
    def total_fixes(self) -> int:
        return sum(len(p.report.fixes) for p in self.programs)

    @property
    def programs_with_failures(self) -> int:
        return sum(1 for p in self.programs if p.bugs_seen > 0)

    @property
    def programs_exterminated(self) -> int:
        return sum(1 for p in self.programs if p.exterminated)

    @property
    def programs_preempted(self) -> int:
        return sum(1 for p in self.programs if p.preempted)

    def residual_failure_rate(self, last_rounds: int = 3) -> float:
        """Failures per 1k executions across the fleet's final rounds."""
        executions = 0
        failures = 0
        for program in self.programs:
            for stats in program.report.rounds[-last_rounds:]:
                executions += stats.executions
                failures += stats.failures
        return 1000.0 * failures / executions if executions else 0.0


class Fleet:
    """Runs the closed loop for every scenario, one hive each."""

    def __init__(self, scenarios: Sequence[Scenario],
                 config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self.platforms = [SoftBorgPlatform(scenario, self._config_for(
            scenario)) for scenario in scenarios]

    def _config_for(self, scenario: Scenario) -> PlatformConfig:
        import dataclasses
        # Proofs need the symbolic oracle; multi-threaded programs run
        # without them (partial proofs only), as the hive would.
        if len(scenario.program.threads) > 1 and self.config.enable_proofs:
            return dataclasses.replace(self.config, enable_proofs=False)
        return self.config

    def run(self) -> FleetReport:
        fleet_report = FleetReport()
        for platform in self.platforms:
            report = platform.run()
            scenario = platform.scenario
            seen = report.density.bugs_seen
            fixed = report.density.bugs_fixed & seen
            fleet_report.programs.append(FleetProgramResult(
                program_name=scenario.program.name,
                report=report,
                bugs_seeded=len(scenario.bugs),
                bugs_seen=len(seen),
                bugs_fixed=len(fixed),
                final_version=platform.hive.program.version,
            ))
        return fleet_report
