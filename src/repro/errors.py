"""Exception hierarchy for the SoftBorg reproduction.

All library-specific errors derive from :class:`SoftBorgError`, so callers
can catch one base class at API boundaries while tests can assert on the
precise subclass.
"""

from __future__ import annotations


class SoftBorgError(Exception):
    """Base class for every error raised by this library."""


class ProgramModelError(SoftBorgError):
    """Malformed program IR: dangling block references, bad operands, etc."""


class ExecutionError(SoftBorgError):
    """The interpreter was driven into an invalid state (library bug or
    malformed schedule), as opposed to a *program* failure, which is a
    normal outcome reported in the trace."""


class ScheduleError(SoftBorgError):
    """A schedule refers to threads that cannot run or does not exist."""


class TraceError(SoftBorgError):
    """A trace could not be decoded, merged, or replayed against its
    program (e.g. version mismatch between pod and hive)."""


class TreeError(SoftBorgError):
    """The collective execution tree was driven into an inconsistent
    state, e.g. two traces disagree on a deterministic branch."""


class SolverError(SoftBorgError):
    """A constraint/SAT solver was given an ill-formed problem."""


class SymbolicError(SoftBorgError):
    """The symbolic engine failed to evaluate an expression or path."""


class FixError(SoftBorgError):
    """A fix could not be synthesized, validated, or applied."""


class ProofError(SoftBorgError):
    """A proof object is inconsistent with the evidence backing it."""


class HiveError(SoftBorgError):
    """Hive-side coordination failure (partitioning, allocation)."""


class NetworkError(SoftBorgError):
    """Simulated-network misuse (unknown endpoint, negative latency)."""


class ConfigError(SoftBorgError):
    """Invalid configuration values passed to a public constructor."""


class ChaosError(SoftBorgError):
    """Injected fault surfaced by the chaos layer (e.g. a simulated
    hive ingest failure that exhausted its retries)."""


class InvariantError(SoftBorgError):
    """A platform-wide invariant was violated: the collective state is
    no longer sound (see ``repro.chaos.invariants``)."""
