"""Human-readable rendering of IR programs.

Used by the CLI and examples to show what a (generated or fixed)
program actually looks like, and invaluable when debugging corpus
generation — the output reads like annotated pseudo-assembly::

    program crash_demo v1  threads=(main)  inputs: n in [0,9], ...
    fn main():
      entry:
        x = (n + 1)
        br (mode == 2) ? m2 : other
      m2:
        br (n == 7) ? boom : safe
      boom:
        crash "bug:crash:crash_demo-b0"
        halt
"""

from __future__ import annotations

from typing import List

from repro.progmodel.ir import (
    Assert,
    Assign,
    BinOp,
    Branch,
    Call,
    Const,
    Crash,
    Expr,
    Function,
    Halt,
    Input,
    Jump,
    LoadGlobal,
    Lock,
    Program,
    Return,
    StoreGlobal,
    Syscall,
    UnOp,
    Unlock,
    Var,
)

__all__ = ["format_expr", "format_program", "format_function"]


def format_expr(expr: Expr) -> str:
    """Infix rendering with minimal parentheses."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Input):
        return f"${expr.name}"
    if isinstance(expr, UnOp):
        inner = format_expr(expr.operand)
        return f"-({inner})" if expr.op == "neg" else f"!({inner})"
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return (f"{expr.op}({format_expr(expr.left)},"
                    f" {format_expr(expr.right)})")
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    return repr(expr)


def _format_instruction(instr) -> str:
    if isinstance(instr, Assign):
        return f"{instr.dst} = {format_expr(instr.expr)}"
    if isinstance(instr, StoreGlobal):
        return f"g[{instr.name}] = {format_expr(instr.expr)}"
    if isinstance(instr, LoadGlobal):
        return f"{instr.dst} = g[{instr.name}]"
    if isinstance(instr, Lock):
        return f"lock {instr.lock_name}"
    if isinstance(instr, Unlock):
        return f"unlock {instr.lock_name}"
    if isinstance(instr, Syscall):
        args = ", ".join(format_expr(a) for a in instr.args)
        return f"{instr.dst} = sys.{instr.name}({args})"
    if isinstance(instr, Assert):
        return f'assert {format_expr(instr.cond)} "{instr.message}"'
    if isinstance(instr, Crash):
        return f'crash "{instr.message}"'
    if isinstance(instr, Call):
        args = ", ".join(format_expr(a) for a in instr.args)
        target = f"{instr.dst} = " if instr.dst else ""
        return f"{target}{instr.callee}({args})"
    return repr(instr)


def _format_terminator(term) -> str:
    if isinstance(term, Branch):
        return (f"br {format_expr(term.cond)}"
                f" ? {term.then_block} : {term.else_block}")
    if isinstance(term, Jump):
        return f"jmp {term.target}"
    if isinstance(term, Return):
        return f"ret {format_expr(term.value)}"
    if isinstance(term, Halt):
        return "halt"
    return repr(term)


def format_function(func: Function, indent: str = "  ") -> str:
    params = ", ".join(func.params)
    lines: List[str] = [f"fn {func.name}({params}):"]
    # Entry first, then the rest alphabetically — stable and readable.
    labels = [func.entry] + sorted(l for l in func.blocks
                                   if l != func.entry)
    for label in labels:
        block = func.blocks[label]
        lines.append(f"{indent}{label}:")
        for instr in block.instructions:
            lines.append(f"{indent}{indent}{_format_instruction(instr)}")
        if block.terminator is not None:
            lines.append(
                f"{indent}{indent}{_format_terminator(block.terminator)}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    inputs = ", ".join(f"{name} in [{lo},{hi}]"
                       for name, (lo, hi) in sorted(program.inputs.items()))
    header = (f"program {program.name} v{program.version}"
              f"  threads=({', '.join(program.threads)})")
    if inputs:
        header += f"\ninputs: {inputs}"
    if program.globals:
        init = ", ".join(f"{n}={v}"
                         for n, v in sorted(program.globals.items()))
        header += f"\nglobals: {init}"
    bodies = [format_function(program.functions[name])
              for name in sorted(program.functions)]
    return header + "\n\n" + "\n\n".join(bodies)
