"""Fluent construction API for IR programs.

Writing :class:`~repro.progmodel.ir.Program` literals by hand is verbose;
the builder keeps model programs readable::

    b = ProgramBuilder("demo", inputs={"n": (0, 100)})
    main = b.function("main")
    entry = main.block("entry")
    entry.assign("x", Input("n") + 1)
    entry.branch(v("x") > 10, "big", "small")
    main.block("big").crash("boom").halt()
    main.block("small").halt()
    program = b.build()
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ProgramModelError
from repro.progmodel.ir import (
    Assert,
    Assign,
    Block,
    Branch,
    Call,
    Const,
    Crash,
    Expr,
    Function,
    Halt,
    Jump,
    LoadGlobal,
    Lock,
    Program,
    Return,
    StoreGlobal,
    Syscall,
    Unlock,
)

__all__ = ["ProgramBuilder", "FunctionBuilder", "BlockBuilder"]


class BlockBuilder:
    """Accumulates instructions for one basic block.

    Instruction methods return ``self`` so calls chain; terminator
    methods (:meth:`branch`, :meth:`jump`, :meth:`ret`, :meth:`halt`)
    seal the block and return ``None``.
    """

    def __init__(self, function: "FunctionBuilder", label: str):
        self._function = function
        self._block = Block(label=label)

    @property
    def label(self) -> str:
        return self._block.label

    def _check_open(self) -> None:
        if self._block.terminator is not None:
            raise ProgramModelError(
                f"block {self._block.label!r} already has a terminator")

    def _add(self, instruction) -> "BlockBuilder":
        self._check_open()
        self._block.instructions.append(instruction)
        return self

    # -- instructions -------------------------------------------------------

    def assign(self, dst: str, expr) -> "BlockBuilder":
        return self._add(Assign(dst, _as_expr(expr)))

    def store_global(self, name: str, expr) -> "BlockBuilder":
        return self._add(StoreGlobal(name, _as_expr(expr)))

    def load_global(self, dst: str, name: str) -> "BlockBuilder":
        return self._add(LoadGlobal(dst, name))

    def lock(self, lock_name: str) -> "BlockBuilder":
        return self._add(Lock(lock_name))

    def unlock(self, lock_name: str) -> "BlockBuilder":
        return self._add(Unlock(lock_name))

    def syscall(self, dst: str, name: str, *args) -> "BlockBuilder":
        return self._add(Syscall(dst, name, tuple(_as_expr(a) for a in args)))

    def check(self, cond, message: str = "assertion failed") -> "BlockBuilder":
        """Add an assertion (named ``check`` to avoid shadowing builtins)."""
        return self._add(Assert(_as_expr(cond), message))

    def crash(self, message: str = "crash") -> "BlockBuilder":
        return self._add(Crash(message))

    def call(self, dst: Optional[str], callee: str, *args) -> "BlockBuilder":
        return self._add(Call(dst, callee, tuple(_as_expr(a) for a in args)))

    # -- terminators ----------------------------------------------------------

    def branch(self, cond, then_block: str, else_block: str) -> None:
        self._check_open()
        self._block.terminator = Branch(_as_expr(cond), then_block, else_block)

    def jump(self, target: str) -> None:
        self._check_open()
        self._block.terminator = Jump(target)

    def ret(self, value=0) -> None:
        self._check_open()
        self._block.terminator = Return(_as_expr(value))

    def halt(self) -> None:
        self._check_open()
        self._block.terminator = Halt()


class FunctionBuilder:
    """Accumulates blocks for one function."""

    def __init__(self, name: str, params: Tuple[str, ...] = (), entry: str = "entry"):
        self._name = name
        self._params = params
        self._entry = entry
        self._blocks: Dict[str, BlockBuilder] = {}

    @property
    def name(self) -> str:
        return self._name

    def block(self, label: str) -> BlockBuilder:
        """Create (or retrieve an unfinished) block builder for ``label``."""
        if label in self._blocks:
            return self._blocks[label]
        builder = BlockBuilder(self, label)
        self._blocks[label] = builder
        return builder

    def build(self) -> Function:
        blocks = {label: bb._block for label, bb in self._blocks.items()}
        return Function(
            name=self._name, params=self._params, blocks=blocks, entry=self._entry)


class ProgramBuilder:
    """Top-level builder; ``build()`` validates and returns the Program."""

    def __init__(
        self,
        name: str,
        inputs: Optional[Dict[str, Tuple[int, int]]] = None,
        threads: Tuple[str, ...] = ("main",),
        global_vars: Optional[Dict[str, int]] = None,
        version: int = 1,
    ):
        self._name = name
        self._inputs = dict(inputs or {})
        self._threads = threads
        self._globals = dict(global_vars or {})
        self._version = version
        self._functions: Dict[str, FunctionBuilder] = {}

    def function(self, name: str, params: Tuple[str, ...] = ()) -> FunctionBuilder:
        if name in self._functions:
            raise ProgramModelError(f"function {name!r} already defined")
        builder = FunctionBuilder(name, params)
        self._functions[name] = builder
        return builder

    def declare_input(self, name: str, lo: int, hi: int) -> None:
        self._inputs[name] = (lo, hi)

    def build(self) -> Program:
        program = Program(
            name=self._name,
            functions={n: fb.build() for n, fb in self._functions.items()},
            threads=self._threads,
            inputs=self._inputs,
            globals=self._globals,
            version=self._version,
        )
        program.validate()
        return program


def _as_expr(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, int):
        return Const(value)
    raise ProgramModelError(f"cannot convert {value!r} to an expression")
