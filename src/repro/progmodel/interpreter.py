"""Concrete multi-threaded interpreter for the program IR.

The interpreter plays two roles:

* **Pod-side (live) execution** — run a program on a concrete input
  vector under a scheduler, emitting the execution *by-products* the
  paper cares about: one event per input-dependent branch, lock
  acquire/release events, syscall return values, scheduling decisions,
  and the execution outcome.

* **Hive-side replay** — run the *same* interpreter with *unknown*
  inputs, consuming a recorded trace (branch bits, syscall returns,
  schedule). Untainted ("deterministic") computation is reconstructed
  concretely; only the recorded bits are consumed at input-dependent
  decision points. This is exactly the paper's "reconstructing the
  deterministic branches" step of tree merging (Sec. 3.2), and it never
  needs a constraint solver because the path really happened.

Values are ``(int | None, tainted: bool)`` pairs: ``None`` appears only
during replay, for data derived from inputs the hive does not know.
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, ProgramModelError, ScheduleError, TraceError
from repro.progmodel.ir import (
    Assert,
    Assign,
    BinOp,
    Branch,
    Call,
    Const,
    Crash,
    Expr,
    Halt,
    Input,
    Jump,
    LoadGlobal,
    Lock,
    Program,
    Return,
    StoreGlobal,
    Syscall,
    UnOp,
    Unlock,
    Var,
)

__all__ = [
    "Outcome", "InputVector", "Environment", "FaultPlan", "ExecutionLimits",
    "Event", "BranchEvent", "LockEvent", "SyscallEvent", "SchedEvent",
    "GlobalEvent", "FailureInfo", "ExecutionResult", "Interpreter",
    "ReplaySource", "TraceExhausted",
]


class Outcome(Enum):
    """Terminal outcome of one execution — the trace's success label."""

    OK = "ok"
    CRASH = "crash"
    ASSERT = "assert"
    DEADLOCK = "deadlock"
    HANG = "hang"

    @property
    def is_failure(self) -> bool:
        return self is not Outcome.OK


InputVector = Dict[str, int]

# A value during interpretation: concrete int (or None when unknown in
# replay), plus two taint bits. ``ext`` marks data derived from any
# program-external source (inputs or syscall returns); ``inp`` marks
# data derived from *inputs* specifically. The distinction matters at
# replay time: syscall returns travel in the trace, so ext-but-not-inp
# data is reconstructable by the hive and costs no recorded branch bit,
# whereas inp data is unknown and each branch on it ships one bit —
# exactly the paper's "one bit per input-dependent branch".
Value = Tuple[Optional[int], bool, bool]


# --------------------------------------------------------------------------
# Events (the raw by-products; the tracing layer filters/encodes these)
# --------------------------------------------------------------------------

# Events are allocated once per interpreter step on the hot path;
# ``slots=True`` (3.10+) drops the per-instance dict. Field set,
# equality, and repr are identical either way.
if sys.version_info >= (3, 10):
    _eventclass = dataclass(slots=True)
else:  # pragma: no cover - 3.9 compatibility fallback
    _eventclass = dataclass


@_eventclass
class BranchEvent:
    """One dynamic conditional decision.

    ``tainted`` marks decisions on program-external data (inputs or
    syscall returns) — these form the execution's path identity.
    ``input_dependent`` marks the subset whose direction the hive
    cannot reconstruct (depends on raw inputs): only those ship one
    recorded bit each; everything else is rebuilt by replay — the
    paper's key capture-cost reduction (Sec. 3.1).
    ``kind`` is "branch" for CFG branches and "assert" for assertion
    checks, which are conditionals for trace purposes.
    """
    thread: int
    function: str
    block: str
    taken: bool
    tainted: bool
    kind: str = "branch"
    input_dependent: bool = False

    @property
    def site(self) -> Tuple[int, str, str]:
        return (self.thread, self.function, self.block)


@_eventclass
class LockEvent:
    """op is "acquire" (granted), "release", or "request" (may block)."""
    thread: int
    op: str
    lock_name: str
    function: str
    block: str


@_eventclass
class SyscallEvent:
    thread: int
    name: str
    value: int


@_eventclass
class GlobalEvent:
    """One shared-variable access: op is "read" or "write".

    ``held_locks`` snapshots the accessing thread's lock set — the
    input to Eraser-style lockset race detection. Like lock events,
    these are by-products the hive reconstructs via replay; they cost
    nothing on the wire.
    """
    thread: int
    op: str
    name: str
    function: str
    block: str
    held_locks: Tuple[str, ...] = ()


@_eventclass
class SchedEvent:
    """One scheduling decision: which thread ran the next step."""
    thread: int


Event = object  # union of the event classes above; kept loose for speed


@dataclass
class FailureInfo:
    """Where and why an execution failed."""
    outcome: Outcome
    message: str
    thread: int
    function: str
    block: str


@dataclass
class ExecutionResult:
    """Everything one execution produced.

    ``events`` is the full ordered by-product stream; the tracing layer
    turns it into a compact wire trace. ``branch_bits`` is the
    convenience projection used everywhere: the directions of tainted
    conditionals, in order.
    """
    program_name: str
    program_version: int
    outcome: Outcome
    events: List[Event]
    steps: int
    failure: Optional[FailureInfo] = None
    return_values: Dict[int, Optional[int]] = field(default_factory=dict)
    final_globals: Dict[str, Optional[int]] = field(default_factory=dict)

    @property
    def branch_bits(self) -> List[bool]:
        """Directions of input-dependent conditionals — the bit-vector
        a pod ships (1 bit per branch the hive cannot reconstruct)."""
        return [e.taken for e in self.events
                if isinstance(e, BranchEvent) and e.input_dependent]

    @property
    def branch_events(self) -> List[BranchEvent]:
        return [e for e in self.events if isinstance(e, BranchEvent)]

    @property
    def tainted_branch_events(self) -> List[BranchEvent]:
        return [e for e in self.events
                if isinstance(e, BranchEvent) and e.tainted]

    @property
    def lock_events(self) -> List[LockEvent]:
        return [e for e in self.events if isinstance(e, LockEvent)]

    @property
    def global_events(self) -> List["GlobalEvent"]:
        return [e for e in self.events if isinstance(e, GlobalEvent)]

    @property
    def syscall_values(self) -> List[int]:
        return [e.value for e in self.events if isinstance(e, SyscallEvent)]

    @property
    def schedule_picks(self) -> List[int]:
        return [e.thread for e in self.events if isinstance(e, SchedEvent)]

    @property
    def path_decisions(self) -> List[Tuple[Tuple[int, str, str], bool]]:
        """(site, taken) decisions at tainted conditionals — the path
        identity used by the collective execution tree."""
        return [(e.site, e.taken) for e in self.events
                if isinstance(e, BranchEvent) and e.tainted]


# --------------------------------------------------------------------------
# Environment: the syscall model
# --------------------------------------------------------------------------

@dataclass
class FaultPlan:
    """Forces specific syscalls (by global occurrence index) to fail.

    Used by the guidance layer (Sec. 3.3: "system call faults to be
    injected, e.g. a short socket read()").
    """
    forced: Dict[int, int] = field(default_factory=dict)

    def override(self, occurrence: int) -> Optional[int]:
        return self.forced.get(occurrence)


class Environment:
    """Models the program-external world reachable through syscalls.

    Supported syscalls (all integer in/out):

    * ``open(path_id)`` — returns a fresh fd, or -1 on failure.
    * ``read(fd, n)`` / ``recv(fd, n)`` — returns bytes transferred;
      possibly a *short* count (< n) or -1 when faulty.
    * ``write(fd, n)`` — returns n or -1.
    * ``close(fd)`` — 0 or -1.
    * ``time()`` — a monotonically increasing virtual timestamp.
    * ``rand(m)`` — uniform in [0, m).

    ``fault_rate`` is the natural probability of a degraded result;
    a :class:`FaultPlan` can force failures deterministically.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 fault_rate: float = 0.0,
                 fault_plan: Optional[FaultPlan] = None):
        self._rng = rng if rng is not None else random.Random(0)
        self.fault_rate = fault_rate
        self.fault_plan = fault_plan or FaultPlan()
        self._clock = 0
        self._open_fds: set = set()
        self._occurrence = 0

    def call(self, name: str, args: Sequence[int]) -> int:
        """Execute one syscall and return its integer result."""
        occurrence = self._occurrence
        self._occurrence += 1
        forced = self.fault_plan.override(occurrence)
        if forced is not None:
            return forced
        faulty = self.fault_rate > 0.0 and self._rng.random() < self.fault_rate
        return self._dispatch(name, list(args), faulty)

    def _dispatch(self, name: str, args: List[int], faulty: bool) -> int:
        if name == "open":
            if faulty:
                return -1
            # Lowest free descriptor >= 3, POSIX-style: a program that
            # closes what it opens sees a stable fd; one that leaks
            # watches its descriptors climb (the LEAK bug family).
            fd = 3
            while fd in self._open_fds:
                fd += 1
            self._open_fds.add(fd)
            return fd
        if name in ("read", "recv"):
            requested = args[1] if len(args) > 1 else (args[0] if args else 0)
            requested = max(0, requested)
            if faulty:
                # Short read: strictly less than requested (possibly 0).
                return self._rng.randrange(0, requested) if requested > 0 else -1
            return requested
        if name == "write":
            requested = args[1] if len(args) > 1 else (args[0] if args else 0)
            return -1 if faulty else max(0, requested)
        if name == "close":
            if faulty:
                return -1
            fd = args[0] if args else -1
            if fd in self._open_fds:
                self._open_fds.discard(fd)
                return 0
            return -1
        if name == "time":
            self._clock += 1
            return self._clock
        if name == "rand":
            bound = args[0] if args and args[0] > 0 else 2
            return self._rng.randrange(bound)
        # Unknown syscalls behave as benign no-ops returning 0 (or -1 when
        # faulty) so corpora can invent descriptive names freely.
        return -1 if faulty else 0


# --------------------------------------------------------------------------
# Replay source (hive side)
# --------------------------------------------------------------------------

class TraceExhausted(TraceError):
    """A replay consumed all recorded bits before the execution ended.

    For full traces this means corruption or a program-version
    mismatch; for deliberately truncated (privacy-coarsened) traces it
    is the expected end of the recorded prefix —
    :meth:`Interpreter.replay_prefix` catches it.
    """


class ReplaySource:
    """Feeds recorded nondeterminism back into the interpreter.

    Exhaustion of the bit stream mid-replay raises
    :class:`TraceExhausted` (a :class:`TraceError`): corruption for
    full traces, the expected end for truncated ones.
    """

    def __init__(self, branch_bits: Sequence[bool],
                 syscall_returns: Sequence[int],
                 schedule_picks: Sequence[int]):
        self._bits: Iterator[bool] = iter(branch_bits)
        self._sys: Iterator[int] = iter(syscall_returns)
        self._sched: Iterator[int] = iter(schedule_picks)

    def next_bit(self) -> bool:
        try:
            return next(self._bits)
        except StopIteration:
            raise TraceExhausted("replay ran out of branch bits")

    def next_syscall(self) -> int:
        try:
            return next(self._sys)
        except StopIteration:
            raise TraceError("replay ran out of syscall returns")

    def next_pick(self) -> Optional[int]:
        try:
            return next(self._sched)
        except StopIteration:
            return None


# --------------------------------------------------------------------------
# Interpreter internals
# --------------------------------------------------------------------------

class _Frame:
    """One call frame. ``fn``/``code`` cache the resolved Function and
    Block objects for the current position, updated at every control
    transfer, so the step loop never re-resolves names."""

    __slots__ = ("function", "block", "index", "locals", "return_dst",
                 "fn", "code")

    def __init__(self, function: str, block: str, index: int,
                 locals: Dict[str, Value],
                 return_dst: Optional[str] = None,
                 fn=None, code=None):
        self.function = function
        self.block = block
        self.index = index
        self.locals = locals
        self.return_dst = return_dst
        self.fn = fn
        self.code = code


class _Thread:
    __slots__ = ("tid", "frames", "status", "blocked_on", "held", "return_value")

    def __init__(self, tid: int, entry_function: str):
        self.tid = tid
        self.frames: List[_Frame] = [
            _Frame(function=entry_function, block="", index=0, locals={})]
        self.status = "runnable"  # runnable | blocked | done
        self.blocked_on: Optional[str] = None
        self.held: List[str] = []
        self.return_value: Optional[int] = None


@dataclass
class ExecutionLimits:
    """Bounds that turn non-termination into a HANG outcome."""
    max_steps: int = 20_000
    max_call_depth: int = 64


class _RoundRobinScheduler:
    """Default scheduler when none is supplied."""

    def pick(self, step: int, runnable: List[int]) -> int:
        return runnable[step % len(runnable)]


# Total binary operators (no failure path), dispatched by table; ``//``
# and ``%`` stay in :meth:`Interpreter._apply` because division by zero
# is a program crash that needs the faulting site. Comparisons wrap in
# int() — values must stay exactly ``int`` (a ``bool`` would leak into
# reprs of globals/returns and change report bytes).
_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "and": lambda a, b: int(bool(a) and bool(b)),
    "or": lambda a, b: int(bool(a) or bool(b)),
    "min": lambda a, b: a if a <= b else b,
    "max": lambda a, b: a if a >= b else b,
}


class Interpreter:
    """Executes a :class:`Program` and collects its by-products.

    One interpreter instance is single-use per ``run``/``replay`` call;
    it holds no state between executions.
    """

    def __init__(self, program: Program,
                 limits: Optional[ExecutionLimits] = None):
        self.program = program
        self.limits = limits or ExecutionLimits()

    # -- public entry points -------------------------------------------------

    def run(self, inputs: InputVector,
            environment: Optional[Environment] = None,
            scheduler=None) -> ExecutionResult:
        """Execute concretely on ``inputs`` (pod side)."""
        self._validate_inputs(inputs)
        self._inputs = dict(inputs)
        return self._execute(
            environment=environment or Environment(),
            scheduler=scheduler or _RoundRobinScheduler(),
            replay=None,
        )

    def replay(self, source: ReplaySource) -> ExecutionResult:
        """Reconstruct an execution from a recorded trace (hive side)."""
        self._inputs = {}
        return self._execute(
            environment=None,
            scheduler=None,
            replay=source,
        )

    def replay_prefix(self, source: ReplaySource) -> List[Tuple]:
        """Reconstruct as much of an execution as a (possibly
        truncated) trace allows; returns the decision-path prefix.

        Used for privacy-coarsened traces (Sec. 3.1): the retained bit
        prefix still pins down a path *prefix*, which merges into the
        collective tree as partial evidence.
        """
        self._inputs = {}
        try:
            result = self._execute(environment=None, scheduler=None,
                                   replay=source)
            return result.path_decisions
        except TraceExhausted:
            return [(e.site, e.taken) for e in self._partial_events
                    if isinstance(e, BranchEvent) and e.tainted]

    # -- helpers ----------------------------------------------------------------

    def _validate_inputs(self, inputs: InputVector) -> None:
        for name, (lo, hi) in self.program.inputs.items():
            if name not in inputs:
                raise ExecutionError(f"missing input {name!r}")
            if not lo <= inputs[name] <= hi:
                raise ExecutionError(
                    f"input {name!r}={inputs[name]} outside domain [{lo},{hi}]")
        for name in inputs:
            if name not in self.program.inputs:
                raise ExecutionError(f"unknown input {name!r}")

    # -- main loop -------------------------------------------------------------

    def _execute(self, environment, scheduler, replay) -> ExecutionResult:
        program = self.program
        events: List[Event] = []
        # Exposed for replay_prefix to salvage on TraceExhausted.
        self._partial_events = events
        globals_: Dict[str, Value] = {
            name: (value, False, False) for name, value in program.globals.items()}
        lock_owner: Dict[str, Optional[int]] = {}
        threads = [_Thread(tid, entry) for tid, entry in enumerate(program.threads)]
        self._threads_snapshot = threads
        for thread in threads:
            frame = thread.frames[0]
            fn = program.function(frame.function)
            frame.fn = fn
            frame.block = fn.entry
            frame.code = fn.block(fn.entry)

        failure: Optional[FailureInfo] = None
        outcome: Optional[Outcome] = None
        steps = 0

        while outcome is None:
            runnable = [t.tid for t in threads if t.status == "runnable"]
            if not runnable:
                if all(t.status == "done" for t in threads):
                    outcome = Outcome.OK
                    break
                blocked = [t for t in threads if t.status == "blocked"]
                victim = blocked[0]
                frame = victim.frames[-1]
                failure = FailureInfo(
                    Outcome.DEADLOCK,
                    f"deadlock: thread {victim.tid} blocked on"
                    f" lock {victim.blocked_on!r}",
                    victim.tid, frame.function, frame.block)
                outcome = Outcome.DEADLOCK
                break
            if steps >= self.limits.max_steps:
                frame = threads[runnable[0]].frames[-1]
                failure = FailureInfo(
                    Outcome.HANG, "step budget exhausted",
                    runnable[0], frame.function, frame.block)
                outcome = Outcome.HANG
                break

            tid = self._pick_thread(replay, scheduler, steps, runnable)
            events.append(SchedEvent(tid))
            steps += 1
            thread = threads[tid]
            try:
                failure = self._step(
                    thread, threads, globals_, lock_owner, events,
                    environment, replay)
            except _ProgramFailure as exc:
                failure = exc.info
            if failure is not None:
                outcome = failure.outcome
                break

        return ExecutionResult(
            program_name=program.name,
            program_version=program.version,
            outcome=outcome,
            events=events,
            steps=steps,
            failure=failure,
            return_values={t.tid: t.return_value for t in threads},
            final_globals={name: value
                           for name, (value, _e, _i) in globals_.items()},
        )

    def _pick_thread(self, replay, scheduler, step: int, runnable: List[int]) -> int:
        if replay is not None:
            pick = replay.next_pick()
            if pick is None:
                # Trace ended with threads still live: the recorded run
                # stopped here (e.g. HANG cut off at the budget); follow
                # round-robin for any residual steps.
                return runnable[step % len(runnable)]
            if pick not in runnable:
                raise TraceError(
                    f"recorded schedule picks thread {pick}, not runnable")
            return pick
        pick = scheduler.pick(step, list(runnable))
        if pick not in runnable:
            raise ScheduleError(
                f"scheduler picked thread {pick}, not in runnable set {runnable}")
        return pick

    # -- single step -------------------------------------------------------------

    def _step(self, thread, threads, globals_, lock_owner, events,
              environment, replay) -> Optional[FailureInfo]:
        frame = thread.frames[-1]
        block = frame.code

        instructions = block.instructions
        if frame.index < len(instructions):
            instr = instructions[frame.index]
            handler = _INSTR_DISPATCH.get(type(instr))
            if handler is None:
                raise ExecutionError(f"unknown instruction {instr!r}")
            return handler(self, instr, thread, frame, globals_, lock_owner,
                           events, environment, replay)

        # Terminator
        term = block.terminator
        if isinstance(term, Jump):
            frame.block = term.target
            frame.code = frame.fn.block(term.target)
            frame.index = 0
            return None
        if isinstance(term, Branch):
            value, ext, inp = self._eval(term.cond, frame, thread, events, replay)
            taken = self._decide(value, inp, replay)
            events.append(BranchEvent(
                thread.tid, frame.function, frame.block, taken, ext,
                "branch", inp))
            target = term.then_block if taken else term.else_block
            frame.block = target
            frame.code = frame.fn.block(target)
            frame.index = 0
            return None
        if isinstance(term, Return):
            value, ext, inp = self._eval(term.value, frame, thread, events, replay)
            thread.frames.pop()
            if not thread.frames:
                thread.status = "done"
                thread.return_value = value
                self._release_all(thread, lock_owner, threads)
                return None
            caller = thread.frames[-1]
            call = self._current_call(caller)
            if call.dst is not None:
                caller.locals[call.dst] = (value, ext, inp)
            caller.index += 1
            return None
        if isinstance(term, Halt):
            thread.frames.clear()
            thread.status = "done"
            self._release_all(thread, lock_owner, threads)
            return None
        raise ExecutionError(f"block {frame.block!r} has no terminator")

    def _current_call(self, frame) -> Call:
        func = self.program.function(frame.function)
        instr = func.block(frame.block).instructions[frame.index]
        if not isinstance(instr, Call):
            raise ExecutionError("return did not land on a Call instruction")
        return instr

    def _exec_instruction(self, instr, thread, frame, globals_, lock_owner,
                          events, environment, replay) -> Optional[FailureInfo]:
        """Type-dispatched instruction execution (kept as the one entry
        point for subclasses/tests; the step loop uses the table
        directly)."""
        handler = _INSTR_DISPATCH.get(type(instr))
        if handler is None:
            raise ExecutionError(f"unknown instruction {instr!r}")
        return handler(self, instr, thread, frame, globals_, lock_owner,
                       events, environment, replay)

    def _exec_assign(self, instr, thread, frame, globals_, lock_owner,
                     events, environment, replay) -> None:
        frame.locals[instr.dst] = self._eval(
            instr.expr, frame, thread, events, replay)
        frame.index += 1
        return None

    def _exec_store_global(self, instr, thread, frame, globals_, lock_owner,
                           events, environment, replay) -> None:
        globals_[instr.name] = self._eval(
            instr.expr, frame, thread, events, replay)
        events.append(GlobalEvent(thread.tid, "write", instr.name,
                                  frame.function, frame.block,
                                  tuple(thread.held)))
        frame.index += 1
        return None

    def _exec_load_global(self, instr, thread, frame, globals_, lock_owner,
                          events, environment, replay) -> None:
        frame.locals[instr.dst] = globals_.get(instr.name, (0, False, False))
        events.append(GlobalEvent(thread.tid, "read", instr.name,
                                  frame.function, frame.block,
                                  tuple(thread.held)))
        frame.index += 1
        return None

    def _exec_lock(self, instr, thread, frame, globals_, lock_owner,
                   events, environment, replay) -> None:
        owner = lock_owner.get(instr.lock_name)
        if owner is None or owner == thread.tid:
            if owner == thread.tid:
                # Re-acquiring a held lock self-deadlocks in this model.
                thread.status = "blocked"
                thread.blocked_on = instr.lock_name
                events.append(LockEvent(thread.tid, "request",
                                        instr.lock_name, frame.function,
                                        frame.block))
                return None
            lock_owner[instr.lock_name] = thread.tid
            thread.held.append(instr.lock_name)
            events.append(LockEvent(thread.tid, "acquire", instr.lock_name,
                                    frame.function, frame.block))
            frame.index += 1
        else:
            thread.status = "blocked"
            thread.blocked_on = instr.lock_name
            events.append(LockEvent(thread.tid, "request", instr.lock_name,
                                    frame.function, frame.block))
        return None

    def _exec_unlock(self, instr, thread, frame, globals_, lock_owner,
                     events, environment, replay) -> Optional[FailureInfo]:
        if lock_owner.get(instr.lock_name) != thread.tid:
            return FailureInfo(
                Outcome.CRASH,
                f"unlock of lock {instr.lock_name!r} not held",
                thread.tid, frame.function, frame.block)
        lock_owner[instr.lock_name] = None
        thread.held.remove(instr.lock_name)
        events.append(LockEvent(thread.tid, "release", instr.lock_name,
                                frame.function, frame.block))
        self._wake_waiters(instr.lock_name)
        frame.index += 1
        return None

    def _exec_syscall(self, instr, thread, frame, globals_, lock_owner,
                      events, environment, replay) -> None:
        if replay is not None:
            value = replay.next_syscall()
        else:
            args = []
            for arg in instr.args:
                arg_value, _e, _i = self._eval(arg, frame, thread,
                                               events, replay)
                if arg_value is None:
                    raise TraceError("syscall argument unknown during live run")
                args.append(arg_value)
            value = environment.call(instr.name, args)
        events.append(SyscallEvent(thread.tid, instr.name, value))
        # Syscall results are program-external (ext) but travel in
        # the trace, so the hive can reconstruct them (not inp).
        frame.locals[instr.dst] = (value, True, False)
        frame.index += 1
        return None

    def _exec_assert(self, instr, thread, frame, globals_, lock_owner,
                     events, environment, replay) -> Optional[FailureInfo]:
        value, ext, inp = self._eval(instr.cond, frame, thread, events, replay)
        passed = self._decide(value, inp, replay)
        events.append(BranchEvent(
            thread.tid, frame.function, frame.block, passed, ext,
            "assert", inp))
        if not passed:
            return FailureInfo(Outcome.ASSERT, instr.message,
                               thread.tid, frame.function, frame.block)
        frame.index += 1
        return None

    def _exec_crash(self, instr, thread, frame, globals_, lock_owner,
                    events, environment, replay) -> FailureInfo:
        return FailureInfo(Outcome.CRASH, instr.message,
                           thread.tid, frame.function, frame.block)

    def _exec_call(self, instr, thread, frame, globals_, lock_owner,
                   events, environment, replay) -> Optional[FailureInfo]:
        if len(thread.frames) >= self.limits.max_call_depth:
            return FailureInfo(Outcome.CRASH, "call depth exceeded",
                               thread.tid, frame.function, frame.block)
        callee = self.program.function(instr.callee)
        local_values = {}
        for param, arg in zip(callee.params, instr.args):
            local_values[param] = self._eval(arg, frame, thread, events, replay)
        thread.frames.append(_Frame(
            function=instr.callee, block=callee.entry, index=0,
            locals=local_values, return_dst=instr.dst,
            fn=callee, code=callee.block(callee.entry)))
        return None

    def _wake_waiters(self, lock_name: str) -> None:
        # Threads blocked on this lock become runnable again; they will
        # retry the Lock instruction when next scheduled.
        for thread in self._threads_snapshot:
            if thread.status == "blocked" and thread.blocked_on == lock_name:
                thread.status = "runnable"
                thread.blocked_on = None

    def _release_all(self, thread, lock_owner, threads) -> None:
        # A finished thread releases anything it still holds, so model
        # programs that forget an Unlock do not wedge the whole run.
        for lock_name in list(thread.held):
            lock_owner[lock_name] = None
            self._wake_waiters(lock_name)
        thread.held.clear()

    # -- decisions -------------------------------------------------------------

    def _decide(self, value, input_dependent, replay) -> bool:
        """Resolve a conditional: concrete when the value is known,
        otherwise consume the next recorded bit (replay of an
        input-dependent decision)."""
        if value is not None:
            return value != 0
        if replay is None:
            raise ExecutionError("unknown value outside replay mode")
        if not input_dependent:
            raise TraceError("non-input condition has unknown value")
        return replay.next_bit()

    # -- expression evaluation ------------------------------------------------

    def _eval(self, expr: Expr, frame, thread, events, replay) -> Value:
        # Exact-type tests ordered by dynamic frequency; the IR node
        # classes are closed (no subclasses), so ``type(...) is`` is a
        # faithful, faster isinstance.
        kind = type(expr)
        if kind is Var:
            try:
                return frame.locals[expr.name]
            except KeyError:
                # Uninitialised locals read as 0, like the paper's C-ish
                # target language would after memset — keeps generated
                # corpora robust.
                return (0, False, False)
        if kind is Const:
            return (expr.value, False, False)
        if kind is BinOp:
            left, le, li = self._eval(expr.left, frame, thread, events, replay)
            right, re_, ri = self._eval(expr.right, frame, thread, events, replay)
            if left is None or right is None:
                return (None, True, True)
            op = expr.op
            fn = _BINOPS.get(op)
            if fn is not None:
                return (fn(left, right), le or re_, li or ri)
            return (self._apply(op, left, right, thread, frame),
                    le or re_, li or ri)
        if kind is Input:
            if replay is not None:
                return (None, True, True)
            return self._input_value(expr.name)
        if kind is UnOp:
            value, ext, inp = self._eval(expr.operand, frame, thread,
                                         events, replay)
            if value is None:
                return (None, True, True)
            if expr.op == "neg":
                return (-value, ext, inp)
            return (int(value == 0), ext, inp)
        raise ExecutionError(f"cannot evaluate {expr!r}")

    def _input_value(self, name: str) -> Value:
        value = self._inputs.get(name)
        if value is None:
            raise ExecutionError(f"input {name!r} not supplied")
        return (value, True, True)

    def _apply(self, op: str, left: int, right: int, thread, frame) -> int:
        fn = _BINOPS.get(op)
        if fn is not None:
            return fn(left, right)
        if op == "//" or op == "%":
            if right == 0:
                raise _ProgramFailure(FailureInfo(
                    Outcome.CRASH,
                    "division by zero" if op == "//" else "modulo by zero",
                    thread.tid, frame.function, frame.block))
            return left // right if op == "//" else left % right
        raise ExecutionError(f"unknown operator {op!r}")

    # The concrete input vector is installed by run(); kept as an
    # attribute so _eval does not need an extra parameter on every call.
    _inputs: InputVector = {}
    _threads_snapshot: List[_Thread] = []


class _ProgramFailure(Exception):
    """Internal control-flow: a program-level failure mid-evaluation."""

    def __init__(self, info: FailureInfo):
        super().__init__(info.message)
        self.info = info


# Instruction handlers keyed by exact IR node type — one dict hit per
# step instead of a nine-way isinstance ladder.
_INSTR_DISPATCH = {
    Assign: Interpreter._exec_assign,
    StoreGlobal: Interpreter._exec_store_global,
    LoadGlobal: Interpreter._exec_load_global,
    Lock: Interpreter._exec_lock,
    Unlock: Interpreter._exec_unlock,
    Syscall: Interpreter._exec_syscall,
    Assert: Interpreter._exec_assert,
    Crash: Interpreter._exec_crash,
    Call: Interpreter._exec_call,
}
