"""Bug taxonomy and ground-truth bug specifications.

Every bug a corpus program contains is described by a :class:`BugSpec`
carrying enough ground truth to (a) construct a triggering input vector
for tests, and (b) let experiments score detection/localization against
what is *actually* in the program. Failure messages embed the bug id, so
an observed failure can be attributed to its seeded bug exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

__all__ = ["BugKind", "BugSpec"]


class BugKind(Enum):
    """The misbehaviour classes the paper discusses (Sec. 2-3)."""

    CRASH = "crash"            # fatal error on a rare input path
    ASSERT = "assert"          # violated programmer assertion
    DEADLOCK = "deadlock"      # circular lock wait (schedule-dependent)
    HANG = "hang"              # infinite loop on a rare input path
    SHORT_READ = "short_read"  # unhandled degraded syscall result
    RACE = "race"              # unsynchronized shared access (lost update)
    LEAK = "leak"              # file descriptors skip their close path
    PRIO_INVERSION = "prio_inversion"  # high-prio starved behind a low-prio lock holder
    LOST_WAKEUP = "lost_wakeup"        # check-then-sleep misses a one-shot notify
    TOCTOU = "toctou"          # stale syscall check, resource gone at use time
    PROVENANCE = "provenance"  # crash site >= 2 calls away from the defect


@dataclass
class BugSpec:
    """Ground truth for one seeded bug.

    ``trigger`` maps input names to the exact values that steer
    execution into the bug site (empty for purely environmental bugs
    like SHORT_READ, and for DEADLOCK bugs the trigger only *enables*
    the racy region — actually deadlocking additionally needs an unlucky
    schedule).
    """

    bug_id: str
    kind: BugKind
    site_function: str
    site_block: str
    trigger: Dict[str, int] = field(default_factory=dict)
    locks: Tuple[str, ...] = ()
    trigger_probability: float = 0.0
    needs_fault: bool = False
    needs_schedule: bool = False
    #: Where the *defect* lives when it differs from where the failure
    #: manifests (provenance bugs, spin sites of concurrency bugs). The
    #: registry scores localization against this, falling back to the
    #: manifestation site when unset.
    defect_function: Optional[str] = None
    defect_block: Optional[str] = None
    #: Call distance between defect and crash site (provenance bugs).
    defect_distance: int = 0

    @property
    def message(self) -> str:
        """The failure message the program emits when this bug fires."""
        return f"bug:{self.kind.value}:{self.bug_id}"

    @property
    def defect_site(self) -> Tuple[str, str]:
        """(function, block) of the true defect — the localization target."""
        return (self.defect_function or self.site_function,
                self.defect_block or self.site_block)

    def triggering_inputs(self, program_inputs: Dict[str, Tuple[int, int]],
                          rng: Optional[random.Random] = None) -> Dict[str, int]:
        """Build a full input vector that satisfies this bug's trigger.

        Unconstrained inputs get random in-domain values (or the domain
        minimum when no RNG is supplied, for determinism in tests).
        """
        vector = {}
        for name, (lo, hi) in program_inputs.items():
            if name in self.trigger:
                vector[name] = self.trigger[name]
            elif rng is not None:
                vector[name] = rng.randint(lo, hi)
            else:
                vector[name] = lo
        return vector

    def matches_failure(self, message: str) -> bool:
        """Whether an observed failure message was produced by this bug."""
        return message == self.message

    def matches_result(self, outcome: "object", message: Optional[str],
                       site_block: Optional[str] = None) -> bool:
        """Ground-truth attribution of one failing execution.

        Crash/assert/race/short-read bugs stamp their id into the
        failure message. Deadlocks and hangs cannot (the runtime
        reports where a thread *happened* to block/spin), so they match
        by outcome kind — plus the spin-site block for hangs.
        """
        if message is not None and message == self.message:
            return True
        outcome_value = getattr(outcome, "value", outcome)
        if self.kind is BugKind.DEADLOCK and outcome_value == "deadlock":
            return True
        hang_kinds = (BugKind.HANG, BugKind.PRIO_INVERSION,
                      BugKind.LOST_WAKEUP)
        if (self.kind in hang_kinds and outcome_value == "hang"
                and site_block == self.site_block):
            return True
        return False
