"""Intermediate representation for SoftBorg's synthetic programs.

A :class:`Program` is a set of named :class:`Function` objects, each a
control-flow graph of :class:`Block` objects. Blocks hold straight-line
:class:`Instruction` lists and end in a terminator (:class:`Branch`,
:class:`Jump`, :class:`Return`, or :class:`Halt`).

Expressions are integer-valued trees built from :class:`Const`,
:class:`Var` (function-local), :class:`Input` (program input, the source
of external nondeterminism) and arithmetic/comparison operators.
Comparison and logic operators yield 0/1, C-style. Python operator
overloading is provided so model programs read naturally::

    cond = (v("x") + 1 < Input("n")) & (v("y") != 0)

The IR is deliberately small but complete enough to express every bug
pattern the paper discusses: crashes, assertion violations, deadlocks
(via ``Lock``/``Unlock``), hangs (loops), and unchecked syscall results
(via ``Syscall``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ProgramModelError

__all__ = [
    "Expr", "Const", "Var", "Input", "BinOp", "UnOp", "c", "v",
    "Instruction", "Assign", "StoreGlobal", "LoadGlobal", "Lock", "Unlock",
    "Syscall", "Assert", "Crash", "Call",
    "Terminator", "Branch", "Jump", "Return", "Halt",
    "Block", "Function", "Program", "BINARY_OPS", "UNARY_OPS",
]


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

BINARY_OPS = (
    "+", "-", "*", "//", "%",
    "==", "!=", "<", "<=", ">", ">=",
    "and", "or", "min", "max",
)
UNARY_OPS = ("neg", "not")


class Expr:
    """Base class for integer expressions.

    Subclasses are immutable value objects; equality is structural.
    Operator overloads build :class:`BinOp`/:class:`UnOp` nodes, with
    ``&``/``|`` standing in for logical and/or (Python's ``and``/``or``
    cannot be overloaded).
    """

    def _wrap(self, other: object) -> "Expr":
        if isinstance(other, Expr):
            return other
        if isinstance(other, bool):
            return Const(int(other))
        if isinstance(other, int):
            return Const(other)
        raise ProgramModelError(f"cannot use {other!r} as an expression operand")

    def __add__(self, other): return BinOp("+", self, self._wrap(other))
    def __radd__(self, other): return BinOp("+", self._wrap(other), self)
    def __sub__(self, other): return BinOp("-", self, self._wrap(other))
    def __rsub__(self, other): return BinOp("-", self._wrap(other), self)
    def __mul__(self, other): return BinOp("*", self, self._wrap(other))
    def __rmul__(self, other): return BinOp("*", self._wrap(other), self)
    def __floordiv__(self, other): return BinOp("//", self, self._wrap(other))
    def __rfloordiv__(self, other): return BinOp("//", self._wrap(other), self)
    def __mod__(self, other): return BinOp("%", self, self._wrap(other))
    def __rmod__(self, other): return BinOp("%", self._wrap(other), self)
    def __neg__(self): return UnOp("neg", self)

    # Comparisons intentionally return expressions, so IR nodes must not
    # be used as dict keys through == ; identity or .key() should be used.
    def __eq__(self, other): return BinOp("==", self, self._wrap(other))  # type: ignore[override]
    def __ne__(self, other): return BinOp("!=", self, self._wrap(other))  # type: ignore[override]
    def __lt__(self, other): return BinOp("<", self, self._wrap(other))
    def __le__(self, other): return BinOp("<=", self, self._wrap(other))
    def __gt__(self, other): return BinOp(">", self, self._wrap(other))
    def __ge__(self, other): return BinOp(">=", self, self._wrap(other))
    def __and__(self, other): return BinOp("and", self, self._wrap(other))
    def __or__(self, other): return BinOp("or", self, self._wrap(other))
    def __invert__(self): return UnOp("not", self)

    __hash__ = None  # type: ignore[assignment]

    def key(self) -> Tuple:
        """A hashable structural key (used instead of __eq__/__hash__).

        Memoized per node: expressions are immutable, and the hot
        symbolic paths (path-condition dedup, canonical cache keys)
        re-ask the same nodes constantly.
        """
        try:
            return self._key
        except AttributeError:
            key = self._key = self._compute_key()
            return key

    def _compute_key(self) -> Tuple:
        raise NotImplementedError

    def children(self) -> Sequence["Expr"]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def inputs(self) -> Tuple[str, ...]:
        """Names of :class:`Input` nodes referenced by this expression,
        first-seen in pre-order (memoized, like :meth:`key`)."""
        try:
            return self._inputs
        except AttributeError:
            names = []
            for node in self.walk():
                if isinstance(node, Input) and node.name not in names:
                    names.append(node.name)
            inputs = self._inputs = tuple(names)
            return inputs

    def variables(self) -> Tuple[str, ...]:
        """Names of :class:`Var` nodes referenced by this expression
        (memoized, like :meth:`key`)."""
        try:
            return self._variables
        except AttributeError:
            names = []
            for node in self.walk():
                if isinstance(node, Var) and node.name not in names:
                    names.append(node.name)
            variables = self._variables = tuple(names)
            return variables


class Const(Expr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not isinstance(value, int):
            raise ProgramModelError(f"Const requires an int, got {value!r}")
        self.value = value

    def _compute_key(self): return ("const", self.value)
    def __repr__(self): return f"Const({self.value})"


class Var(Expr):
    """A function-local variable reference."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _compute_key(self): return ("var", self.name)
    def __repr__(self): return f"Var({self.name!r})"


class Input(Expr):
    """A program input — the paper's "program-external event" source.

    Inputs are the only expression leaves whose value is unknown to the
    hive; branches whose conditions reach an ``Input`` (directly or via
    dataflow) are the *input-dependent branches* recorded one bit each
    in the trace (paper Sec. 3.1).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _compute_key(self): return ("input", self.name)
    def __repr__(self): return f"Input({self.name!r})"


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in BINARY_OPS:
            raise ProgramModelError(f"unknown binary op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def _compute_key(self):
        return ("bin", self.op, self.left.key(), self.right.key())
    def children(self): return (self.left, self.right)
    def __repr__(self): return f"({self.left!r} {self.op} {self.right!r})"


class UnOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        if op not in UNARY_OPS:
            raise ProgramModelError(f"unknown unary op {op!r}")
        self.op = op
        self.operand = operand

    def _compute_key(self): return ("un", self.op, self.operand.key())
    def children(self): return (self.operand,)
    def __repr__(self): return f"{self.op}({self.operand!r})"


def c(value: int) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value)


def v(name: str) -> Var:
    """Shorthand constructor for :class:`Var`."""
    return Var(name)


# --------------------------------------------------------------------------
# Instructions
# --------------------------------------------------------------------------

class Instruction:
    """Base class for straight-line instructions."""

    def expressions(self) -> Sequence[Expr]:
        """Expressions evaluated by this instruction (for static analysis)."""
        return ()


@dataclass
class Assign(Instruction):
    """``dst = expr`` over function-local variables."""
    dst: str
    expr: Expr

    def expressions(self): return (self.expr,)


@dataclass
class StoreGlobal(Instruction):
    """``globals[name] = expr`` — writes shared (cross-thread) state."""
    name: str
    expr: Expr

    def expressions(self): return (self.expr,)


@dataclass
class LoadGlobal(Instruction):
    """``dst = globals[name]`` — reads shared (cross-thread) state."""
    dst: str
    name: str


@dataclass
class Lock(Instruction):
    """Acquire the named mutex; blocks while held by another thread."""
    lock_name: str


@dataclass
class Unlock(Instruction):
    """Release the named mutex; releasing a lock not held is a crash."""
    lock_name: str


@dataclass
class Syscall(Instruction):
    """``dst = syscall(name, *args)``.

    Return values come from the :class:`~repro.progmodel.interpreter.Environment`
    and are treated as external (tainted) data, like inputs. The trace
    records each return value so the hive can replay deterministically.
    """
    dst: str
    name: str
    args: Tuple[Expr, ...] = ()

    def expressions(self): return self.args


@dataclass
class Assert(Instruction):
    """Terminate the execution with an assertion failure if cond == 0."""
    cond: Expr
    message: str = "assertion failed"

    def expressions(self): return (self.cond,)


@dataclass
class Crash(Instruction):
    """Unconditional crash (models a segfault / fatal error site)."""
    message: str = "crash"


@dataclass
class Call(Instruction):
    """``dst = callee(args...)``; call-by-value integer arguments."""
    dst: Optional[str]
    callee: str
    args: Tuple[Expr, ...] = ()

    def expressions(self): return self.args


# --------------------------------------------------------------------------
# Terminators
# --------------------------------------------------------------------------

class Terminator:
    """Base class for block terminators."""

    def targets(self) -> Tuple[str, ...]:
        return ()


@dataclass
class Branch(Terminator):
    """Two-way conditional branch: nonzero cond -> then_block."""
    cond: Expr
    then_block: str
    else_block: str

    def targets(self): return (self.then_block, self.else_block)


@dataclass
class Jump(Terminator):
    target: str

    def targets(self): return (self.target,)


@dataclass
class Return(Terminator):
    value: Expr = field(default_factory=lambda: Const(0))


@dataclass
class Halt(Terminator):
    """End the executing thread (only meaningful in a thread's entry
    function; in nested calls it still terminates the whole thread)."""


# --------------------------------------------------------------------------
# Blocks / functions / programs
# --------------------------------------------------------------------------

@dataclass
class Block:
    """A basic block: a label, straight-line instructions, a terminator."""

    label: str
    instructions: List[Instruction] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def branch_site(self) -> Optional[Branch]:
        term = self.terminator
        return term if isinstance(term, Branch) else None


@dataclass
class Function:
    """A named function: parameter list plus a CFG of blocks."""

    name: str
    params: Tuple[str, ...] = ()
    blocks: Dict[str, Block] = field(default_factory=dict)
    entry: str = "entry"

    def block(self, label: str) -> Block:
        try:
            return self.blocks[label]
        except KeyError:
            raise ProgramModelError(f"function {self.name!r} has no block {label!r}")

    def branch_sites(self) -> List[Tuple[str, Branch]]:
        """All (block_label, Branch) pairs in deterministic order."""
        sites = []
        for label in sorted(self.blocks):
            branch = self.blocks[label].branch_site()
            if branch is not None:
                sites.append((label, branch))
        return sites


@dataclass
class Program:
    """A complete program.

    ``threads`` names the entry function of each thread; a conventional
    single-threaded program has ``threads=("main",)``. ``inputs`` maps
    each input name to its inclusive integer domain — the interpreter
    validates supplied input vectors against it and the symbolic engine
    uses it to bound search.
    """

    name: str
    functions: Dict[str, Function] = field(default_factory=dict)
    threads: Tuple[str, ...] = ("main",)
    inputs: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    globals: Dict[str, int] = field(default_factory=dict)
    version: int = 1

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise ProgramModelError(f"program {self.name!r} has no function {name!r}")

    # -- static queries ----------------------------------------------------

    def branch_sites(self) -> List[Tuple[str, str]]:
        """All (function, block) branch sites, in deterministic order."""
        sites = []
        for fname in sorted(self.functions):
            for label, _branch in self.functions[fname].branch_sites():
                sites.append((fname, label))
        return sites

    def lock_names(self) -> Tuple[str, ...]:
        names = set()
        for func in self.functions.values():
            for block in func.blocks.values():
                for instr in block.instructions:
                    if isinstance(instr, (Lock, Unlock)):
                        names.add(instr.lock_name)
        return tuple(sorted(names))

    def instruction_count(self) -> int:
        """Total instructions + terminators; a proxy for lines of code."""
        total = 0
        for func in self.functions.values():
            for block in func.blocks.values():
                total += len(block.instructions) + 1
        return total

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness; raise ProgramModelError.

        Verifies that every block has a terminator, every jump target and
        callee exists, thread entry functions exist and take no
        parameters, and input domains are non-empty.
        """
        if not self.threads:
            raise ProgramModelError(f"program {self.name!r} declares no threads")
        for tfunc in self.threads:
            if tfunc not in self.functions:
                raise ProgramModelError(
                    f"thread entry function {tfunc!r} is not defined")
            if self.functions[tfunc].params:
                raise ProgramModelError(
                    f"thread entry function {tfunc!r} must take no parameters")
        for name, (lo, hi) in self.inputs.items():
            if lo > hi:
                raise ProgramModelError(f"input {name!r} has empty domain [{lo},{hi}]")
        for fname, func in self.functions.items():
            if func.name != fname:
                raise ProgramModelError(
                    f"function registered as {fname!r} is named {func.name!r}")
            if func.entry not in func.blocks:
                raise ProgramModelError(
                    f"function {fname!r}: entry block {func.entry!r} missing")
            for label, block in func.blocks.items():
                if block.label != label:
                    raise ProgramModelError(
                        f"function {fname!r}: block registered as {label!r}"
                        f" is labelled {block.label!r}")
                if block.terminator is None:
                    raise ProgramModelError(
                        f"function {fname!r}: block {label!r} has no terminator")
                for target in block.terminator.targets():
                    if target not in func.blocks:
                        raise ProgramModelError(
                            f"function {fname!r}: block {label!r} targets"
                            f" unknown block {target!r}")
                for instr in block.instructions:
                    if isinstance(instr, Call):
                        if instr.callee not in self.functions:
                            raise ProgramModelError(
                                f"function {fname!r}: call to unknown"
                                f" function {instr.callee!r}")
                        callee = self.functions[instr.callee]
                        if len(callee.params) != len(instr.args):
                            raise ProgramModelError(
                                f"function {fname!r}: call to {instr.callee!r}"
                                f" passes {len(instr.args)} args,"
                                f" expected {len(callee.params)}")
                    for expr in instr.expressions():
                        self._validate_expr(fname, label, expr)
                if isinstance(block.terminator, Branch):
                    self._validate_expr(fname, label, block.terminator.cond)
                elif isinstance(block.terminator, Return):
                    self._validate_expr(fname, label, block.terminator.value)

    def _validate_expr(self, fname: str, label: str, expr: Expr) -> None:
        for node in expr.walk():
            if isinstance(node, Input) and node.name not in self.inputs:
                raise ProgramModelError(
                    f"function {fname!r} block {label!r}: unknown input"
                    f" {node.name!r}")
