"""Wire serialization of programs.

Fix distribution ships whole program versions to pods (paper Fig. 1:
"fixes" flow from the hive to the pods). This module gives the IR a
compact, self-describing binary encoding so updates can cross the
simulated network as bytes, exactly like traces do — and so a real
deployment could persist or diff program versions.

The format is a tagged pre-order walk of the IR with varint integers
and length-prefixed UTF-8 strings; it round-trips every construct the
IR supports and validates the result on decode.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ProgramModelError, TraceError
from repro.progmodel.ir import (
    Assert,
    Assign,
    BinOp,
    Block,
    Branch,
    Call,
    Const,
    Crash,
    Expr,
    Function,
    Halt,
    Input,
    Instruction,
    Jump,
    LoadGlobal,
    Lock,
    Program,
    Return,
    StoreGlobal,
    Syscall,
    Terminator,
    UnOp,
    Unlock,
    Var,
)

__all__ = ["encode_program", "decode_program", "program_wire_size"]

_FORMAT_VERSION = 1

# Node tags.
_EXPR_CONST, _EXPR_VAR, _EXPR_INPUT, _EXPR_BIN, _EXPR_UN = range(5)
(_I_ASSIGN, _I_STORE, _I_LOAD, _I_LOCK, _I_UNLOCK, _I_SYSCALL, _I_ASSERT,
 _I_CRASH, _I_CALL) = range(9)
_T_BRANCH, _T_JUMP, _T_RETURN, _T_HALT = range(4)


class _Writer:
    def __init__(self):
        self.out = bytearray()

    def varint(self, value: int) -> None:
        if value < 0:
            raise ProgramModelError(f"varint cannot encode {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self.out.append(byte | 0x80)
            else:
                self.out.append(byte)
                return

    def zigzag(self, value: int) -> None:
        self.varint(value * 2 if value >= 0 else -value * 2 - 1)

    def string(self, text: str) -> None:
        data = text.encode("utf-8")
        self.varint(len(data))
        self.out.extend(data)


class _Reader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            if self._pos >= len(self._data):
                raise TraceError("truncated program encoding (varint)")
            byte = self._data[self._pos]
            self._pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def zigzag(self) -> int:
        raw = self.varint()
        return raw // 2 if raw % 2 == 0 else -(raw + 1) // 2

    def string(self) -> str:
        length = self.varint()
        if self._pos + length > len(self._data):
            raise TraceError("truncated program encoding (string)")
        text = self._data[self._pos:self._pos + length].decode("utf-8")
        self._pos += length
        return text

    def done(self) -> bool:
        return self._pos == len(self._data)


# -- expressions ---------------------------------------------------------------

_BINOPS = ("+", "-", "*", "//", "%", "==", "!=", "<", "<=", ">", ">=",
           "and", "or", "min", "max")
_UNOPS = ("neg", "not")


def _write_expr(w: _Writer, expr: Expr) -> None:
    if isinstance(expr, Const):
        w.varint(_EXPR_CONST)
        w.zigzag(expr.value)
    elif isinstance(expr, Var):
        w.varint(_EXPR_VAR)
        w.string(expr.name)
    elif isinstance(expr, Input):
        w.varint(_EXPR_INPUT)
        w.string(expr.name)
    elif isinstance(expr, BinOp):
        w.varint(_EXPR_BIN)
        w.varint(_BINOPS.index(expr.op))
        _write_expr(w, expr.left)
        _write_expr(w, expr.right)
    elif isinstance(expr, UnOp):
        w.varint(_EXPR_UN)
        w.varint(_UNOPS.index(expr.op))
        _write_expr(w, expr.operand)
    else:
        raise ProgramModelError(f"cannot serialize expression {expr!r}")


def _read_expr(r: _Reader) -> Expr:
    tag = r.varint()
    if tag == _EXPR_CONST:
        return Const(r.zigzag())
    if tag == _EXPR_VAR:
        return Var(r.string())
    if tag == _EXPR_INPUT:
        return Input(r.string())
    if tag == _EXPR_BIN:
        op = _BINOPS[r.varint()]
        left = _read_expr(r)
        right = _read_expr(r)
        return BinOp(op, left, right)
    if tag == _EXPR_UN:
        op = _UNOPS[r.varint()]
        return UnOp(op, _read_expr(r))
    raise TraceError(f"bad expression tag {tag}")


# -- instructions ---------------------------------------------------------------

def _write_instruction(w: _Writer, instr: Instruction) -> None:
    if isinstance(instr, Assign):
        w.varint(_I_ASSIGN)
        w.string(instr.dst)
        _write_expr(w, instr.expr)
    elif isinstance(instr, StoreGlobal):
        w.varint(_I_STORE)
        w.string(instr.name)
        _write_expr(w, instr.expr)
    elif isinstance(instr, LoadGlobal):
        w.varint(_I_LOAD)
        w.string(instr.dst)
        w.string(instr.name)
    elif isinstance(instr, Lock):
        w.varint(_I_LOCK)
        w.string(instr.lock_name)
    elif isinstance(instr, Unlock):
        w.varint(_I_UNLOCK)
        w.string(instr.lock_name)
    elif isinstance(instr, Syscall):
        w.varint(_I_SYSCALL)
        w.string(instr.dst)
        w.string(instr.name)
        w.varint(len(instr.args))
        for arg in instr.args:
            _write_expr(w, arg)
    elif isinstance(instr, Assert):
        w.varint(_I_ASSERT)
        _write_expr(w, instr.cond)
        w.string(instr.message)
    elif isinstance(instr, Crash):
        w.varint(_I_CRASH)
        w.string(instr.message)
    elif isinstance(instr, Call):
        w.varint(_I_CALL)
        w.string(instr.dst or "")
        w.string(instr.callee)
        w.varint(len(instr.args))
        for arg in instr.args:
            _write_expr(w, arg)
    else:
        raise ProgramModelError(f"cannot serialize instruction {instr!r}")


def _read_instruction(r: _Reader) -> Instruction:
    tag = r.varint()
    if tag == _I_ASSIGN:
        return Assign(r.string(), _read_expr(r))
    if tag == _I_STORE:
        return StoreGlobal(r.string(), _read_expr(r))
    if tag == _I_LOAD:
        return LoadGlobal(r.string(), r.string())
    if tag == _I_LOCK:
        return Lock(r.string())
    if tag == _I_UNLOCK:
        return Unlock(r.string())
    if tag == _I_SYSCALL:
        dst = r.string()
        name = r.string()
        args = tuple(_read_expr(r) for _ in range(r.varint()))
        return Syscall(dst, name, args)
    if tag == _I_ASSERT:
        return Assert(_read_expr(r), r.string())
    if tag == _I_CRASH:
        return Crash(r.string())
    if tag == _I_CALL:
        dst = r.string() or None
        callee = r.string()
        args = tuple(_read_expr(r) for _ in range(r.varint()))
        return Call(dst, callee, args)
    raise TraceError(f"bad instruction tag {tag}")


def _write_terminator(w: _Writer, term: Terminator) -> None:
    if isinstance(term, Branch):
        w.varint(_T_BRANCH)
        _write_expr(w, term.cond)
        w.string(term.then_block)
        w.string(term.else_block)
    elif isinstance(term, Jump):
        w.varint(_T_JUMP)
        w.string(term.target)
    elif isinstance(term, Return):
        w.varint(_T_RETURN)
        _write_expr(w, term.value)
    elif isinstance(term, Halt):
        w.varint(_T_HALT)
    else:
        raise ProgramModelError(f"cannot serialize terminator {term!r}")


def _read_terminator(r: _Reader) -> Terminator:
    tag = r.varint()
    if tag == _T_BRANCH:
        return Branch(_read_expr(r), r.string(), r.string())
    if tag == _T_JUMP:
        return Jump(r.string())
    if tag == _T_RETURN:
        return Return(_read_expr(r))
    if tag == _T_HALT:
        return Halt()
    raise TraceError(f"bad terminator tag {tag}")


# -- programs ---------------------------------------------------------------------

def encode_program(program: Program) -> bytes:
    """Serialize a program (including its version stamp)."""
    w = _Writer()
    w.varint(_FORMAT_VERSION)
    w.string(program.name)
    w.varint(program.version)
    w.varint(len(program.threads))
    for thread in program.threads:
        w.string(thread)
    w.varint(len(program.inputs))
    for name in sorted(program.inputs):
        lo, hi = program.inputs[name]
        w.string(name)
        w.zigzag(lo)
        w.zigzag(hi)
    w.varint(len(program.globals))
    for name in sorted(program.globals):
        w.string(name)
        w.zigzag(program.globals[name])
    w.varint(len(program.functions))
    for fname in sorted(program.functions):
        func = program.functions[fname]
        w.string(func.name)
        w.varint(len(func.params))
        for param in func.params:
            w.string(param)
        w.string(func.entry)
        w.varint(len(func.blocks))
        for label in sorted(func.blocks):
            block = func.blocks[label]
            w.string(block.label)
            w.varint(len(block.instructions))
            for instr in block.instructions:
                _write_instruction(w, instr)
            if block.terminator is None:
                raise ProgramModelError(
                    f"block {label!r} has no terminator")
            _write_terminator(w, block.terminator)
    return bytes(w.out)


def decode_program(data: bytes) -> Program:
    """Inverse of :func:`encode_program`; validates the result."""
    r = _Reader(data)
    version = r.varint()
    if version != _FORMAT_VERSION:
        raise TraceError(f"unsupported program format version {version}")
    name = r.string()
    program_version = r.varint()
    threads = tuple(r.string() for _ in range(r.varint()))
    inputs: Dict[str, Tuple[int, int]] = {}
    for _ in range(r.varint()):
        input_name = r.string()
        inputs[input_name] = (r.zigzag(), r.zigzag())
    global_vars: Dict[str, int] = {}
    for _ in range(r.varint()):
        global_name = r.string()
        global_vars[global_name] = r.zigzag()
    functions: Dict[str, Function] = {}
    for _ in range(r.varint()):
        fname = r.string()
        params = tuple(r.string() for _ in range(r.varint()))
        entry = r.string()
        blocks: Dict[str, Block] = {}
        for _b in range(r.varint()):
            label = r.string()
            instructions: List[Instruction] = [
                _read_instruction(r) for _ in range(r.varint())]
            terminator = _read_terminator(r)
            blocks[label] = Block(label=label, instructions=instructions,
                                  terminator=terminator)
        functions[fname] = Function(name=fname, params=params,
                                    blocks=blocks, entry=entry)
    if not r.done():
        raise TraceError("trailing bytes after program")
    program = Program(name=name, functions=functions, threads=threads,
                      inputs=inputs, globals=global_vars,
                      version=program_version)
    program.validate()
    return program


def program_wire_size(program: Program) -> int:
    """Update-payload size in bytes."""
    return len(encode_program(program))
