"""Synthetic program corpus with seeded, ground-truthed bugs.

The corpus generator plays the role of "real end-user software" in the
reproduction: it emits structured programs (branchy straight-line code,
bounded loops, helper functions, syscalls, optional multi-threaded lock
regions) and seeds them with the bug patterns the paper discusses —
rare-input crashes, assertion violations, schedule-dependent deadlocks,
hangs, and unhandled short reads. Each seeded bug comes with a
:class:`~repro.progmodel.bugs.BugSpec` recording its ground truth, so
experiments can score SoftBorg's detection/fixing against reality.

Generation is fully deterministic in the configured seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import rng as rng_util
from repro.errors import ConfigError
from repro.progmodel.bugs import BugKind, BugSpec
from repro.progmodel.builder import BlockBuilder, ProgramBuilder
from repro.progmodel.ir import Const, Expr, Input, Program, Var, c, v

__all__ = [
    "CorpusConfig", "SeededProgram", "generate_program", "generate_corpus",
    "make_deadlock_demo", "make_crash_demo", "make_shortread_demo",
    "make_race_demo", "make_leak_demo", "make_prio_demo",
    "make_wakeup_demo", "make_toctou_demo", "make_provenance_demo",
]

#: Bug kinds that need their own extra thread(s) and globals; a program
#: hosts at most one of these (they would contend for the same worker
#: scaffolding and scheduler attention).
_CONCURRENCY_KINDS = (BugKind.DEADLOCK, BugKind.RACE,
                      BugKind.PRIO_INVERSION, BugKind.LOST_WAKEUP)


@dataclass
class CorpusConfig:
    """Knobs for synthetic program generation.

    ``bug_rarity`` is the number of input-equality conjuncts in each
    bug's trigger predicate; with inputs uniform over ``input_domain``
    values, a rarity-r bug fires with probability ``input_domain**-r``
    per (random-input) execution once its segment is reached.
    """

    seed: int = 0
    n_inputs: int = 4
    input_domain: int = 8
    n_segments: int = 8
    loop_probability: float = 0.2
    syscall_probability: float = 0.2
    helper_count: int = 2
    max_loop_iterations: int = 4
    bug_rarity: int = 1
    # Probability that a bug-free diamond segment nests a second
    # diamond inside its then-arm. Kept at 0.0 by default so existing
    # seeds generate byte-identical programs (the roll is only drawn
    # when the probability is positive).
    nested_probability: float = 0.0

    def validate(self) -> None:
        if self.n_inputs < 1:
            raise ConfigError("n_inputs must be >= 1")
        if self.input_domain < 2:
            raise ConfigError("input_domain must be >= 2")
        if self.n_segments < 1:
            raise ConfigError("n_segments must be >= 1")
        if self.bug_rarity < 1 or self.bug_rarity > self.n_inputs:
            raise ConfigError("bug_rarity must be in [1, n_inputs]")
        if self.max_loop_iterations < 1:
            raise ConfigError("max_loop_iterations must be >= 1")


@dataclass
class SeededProgram:
    """A generated program plus the ground truth of its seeded bugs."""

    program: Program
    bugs: List[BugSpec] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.program.name

    def bug_for_message(self, message: str) -> Optional[BugSpec]:
        for bug in self.bugs:
            if bug.matches_failure(message):
                return bug
        return None


# --------------------------------------------------------------------------
# Random expression helpers
# --------------------------------------------------------------------------

_ARITH_OPS = ("+", "-", "*")
_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


class _ExprGen:
    """Generates random integer expressions over inputs and locals."""

    def __init__(self, rng: random.Random, input_names: Sequence[str],
                 local_names: Sequence[str], domain: int):
        self._rng = rng
        self._inputs = list(input_names)
        self._locals = list(local_names)
        self._domain = domain

    def leaf(self) -> Expr:
        roll = self._rng.random()
        if roll < 0.45 and self._inputs:
            return Input(self._rng.choice(self._inputs))
        if roll < 0.8 and self._locals:
            return Var(self._rng.choice(self._locals))
        return Const(self._rng.randrange(self._domain))

    def arith(self, depth: int = 2) -> Expr:
        if depth <= 0 or self._rng.random() < 0.4:
            return self.leaf()
        op = self._rng.choice(_ARITH_OPS)
        left = self.arith(depth - 1)
        right = self.arith(depth - 1)
        expr = _binop(op, left, right)
        # Keep magnitudes bounded so generated arithmetic stays in a
        # small, analysis-friendly range.
        if self._rng.random() < 0.5:
            expr = _binop("%", expr, Const(max(2, self._domain)))
        return expr

    def condition(self) -> Expr:
        op = self._rng.choice(_CMP_OPS)
        return _binop(op, self.arith(2), Const(self._rng.randrange(self._domain)))


def _binop(op: str, left: Expr, right: Expr) -> Expr:
    from repro.progmodel.ir import BinOp
    return BinOp(op, left, right)


def _trigger_predicate(trigger: Dict[str, int]) -> Expr:
    """AND of input==value conjuncts (the bug's gate)."""
    expr: Optional[Expr] = None
    for name in sorted(trigger):
        conjunct = _binop("==", Input(name), Const(trigger[name]))
        expr = conjunct if expr is None else _binop("and", expr, conjunct)
    assert expr is not None
    return expr


# --------------------------------------------------------------------------
# Program generation
# --------------------------------------------------------------------------

def generate_program(name: str,
                     config: Optional[CorpusConfig] = None,
                     bug_kinds: Sequence[BugKind] = (BugKind.CRASH,),
                     seed_offset: int = 0) -> SeededProgram:
    """Generate one program with the requested seeded bugs.

    ``bug_kinds`` lists the bugs to seed, in order; each gets a distinct
    random trigger. ``seed_offset`` lets callers derive many programs
    from one config deterministically.
    """
    config = config or CorpusConfig()
    config.validate()
    rng = rng_util.make_rng(config.seed, "program", name, seed_offset)

    input_names = [f"in{i}" for i in range(config.n_inputs)]
    inputs = {n: (0, config.input_domain - 1) for n in input_names}
    local_names = [f"t{i}" for i in range(4)]

    has_deadlock = BugKind.DEADLOCK in bug_kinds
    has_race = BugKind.RACE in bug_kinds
    has_prio = BugKind.PRIO_INVERSION in bug_kinds
    has_wakeup = BugKind.LOST_WAKEUP in bug_kinds
    if has_deadlock and has_race:
        raise ConfigError(
            "DEADLOCK and RACE share the worker thread; seed one per program")
    if sum(1 for k in bug_kinds if k in _CONCURRENCY_KINDS) > 1:
        raise ConfigError(
            "at most one concurrency bug (deadlock/race/prio_inversion/"
            "lost_wakeup) per program")
    multithreaded = has_deadlock or has_race or has_wakeup
    threads: Tuple[str, ...] = ("main",)
    if has_prio:
        threads = ("main", "mid", "low")
    elif multithreaded:
        threads = ("main", "worker")
    global_vars = {}
    if has_deadlock:
        global_vars = {"g_enter": 0, "g_done": 0}
    if has_race:
        global_vars = {"g_cnt": 0, "g_done": 0, "g_wdone": 0}
    if has_wakeup:
        global_vars = {"g_sig": 0, "g_waiting": 0, "g_wake": 0}
    if has_prio:
        global_vars = {"g_hp_done": 0, "g_done": 0}

    builder = ProgramBuilder(name, inputs=inputs, threads=threads,
                             global_vars=global_vars)
    gen = _ExprGen(rng, input_names, local_names, config.input_domain)

    helper_names = _emit_helpers(builder, gen, rng, config)

    main = builder.function("main")
    entry = main.block("entry")
    for i, local in enumerate(local_names):
        entry.assign(local, Input(input_names[i % len(input_names)]))
    entry.jump("seg0")

    # Decide which segment hosts which bug: one bug per segment, so bug
    # sites never interfere with each other.
    if len(bug_kinds) > config.n_segments:
        raise ConfigError(
            f"cannot seed {len(bug_kinds)} bugs into {config.n_segments} segments")
    if sum(1 for k in bug_kinds if k is BugKind.DEADLOCK) > 1:
        raise ConfigError("at most one DEADLOCK bug per program")
    bugs: List[BugSpec] = []
    placements: Dict[int, List[Tuple[int, BugKind]]] = {}
    chosen_segments = rng.sample(range(config.n_segments), len(bug_kinds))
    for bug_index, kind in enumerate(bug_kinds):
        placements[chosen_segments[bug_index]] = [(bug_index, kind)]

    for seg in range(config.n_segments):
        next_label = f"seg{seg + 1}" if seg + 1 < config.n_segments else "end"
        seeded_here = placements.get(seg, [])
        _emit_segment(builder, main, gen, rng, config, name, seg, next_label,
                      seeded_here, bugs, helper_names, input_names)

    end = main.block("end")
    if has_race:
        # Wait for the worker, then check the shared counter: lost
        # updates under racy interleavings fail this assertion.
        race_bug = next(b for b in bugs if b.kind is BugKind.RACE)
        end.store_global("g_done", 1)
        end.jump("race_wait")
        wait = main.block("race_wait")
        wait.load_global("wd", "g_wdone")
        wait.branch(_binop("==", Var("wd"), Const(1)),
                    "race_check", "race_wait")
        chk = main.block("race_check")
        chk.load_global("cnt", "g_cnt")
        chk.check(_binop("==", Var("cnt"),
                         Const(2 * _RACE_INCREMENTS)), race_bug.message)
        chk.halt()
    else:
        if has_deadlock or has_prio:
            end.store_global("g_done", 1)
        end.halt()

    if has_deadlock:
        _emit_worker(builder, bugs)
    if has_race:
        _emit_race_worker(builder)
    if has_wakeup:
        _emit_wakeup_worker(builder)
    if has_prio:
        _emit_prio_threads(builder, bugs)

    program = builder.build()
    return SeededProgram(program=program, bugs=bugs)


def _emit_helpers(builder: ProgramBuilder, gen: _ExprGen, rng: random.Random,
                  config: CorpusConfig) -> List[str]:
    """Emit small leaf functions used as call targets (and as the
    "units" for relaxed-consistency analysis)."""
    names = []
    for i in range(config.helper_count):
        fname = f"helper{i}"
        names.append(fname)
        func = builder.function(fname, params=("a", "b"))
        entry = func.block("entry")
        entry.assign("r", _binop(rng.choice(_ARITH_OPS), Var("a"), Var("b")))
        entry.branch(_binop(rng.choice(_CMP_OPS), Var("r"),
                            Const(rng.randrange(config.input_domain))),
                     "hi", "lo")
        func.block("hi").assign(
            "r", _binop("%", _binop("+", Var("r"), Const(1)),
                        Const(config.input_domain))).jump("out")
        func.block("lo").assign(
            "r", _binop("%", _binop("*", Var("r"), Const(2)),
                        Const(config.input_domain))).jump("out")
        func.block("out").ret(Var("r"))
    return names


def _emit_segment(builder, main, gen, rng, config, prog_name, seg,
                  next_label, seeded_here, bugs, helper_names, input_names):
    """Emit segment ``seg`` of main, optionally hosting seeded bugs."""
    label = f"seg{seg}"
    kind_roll = rng.random()
    deadlock_here = any(k is BugKind.DEADLOCK for _i, k in seeded_here)
    shortread_here = any(k is BugKind.SHORT_READ for _i, k in seeded_here)
    race_here = [(i, k) for i, k in seeded_here if k is BugKind.RACE]

    if race_here:
        _emit_race_segment(main, prog_name, seg, next_label,
                           race_here[0][0], bugs)
        return

    for emit, kind in ((_emit_leak_segment, BugKind.LEAK),
                       (_emit_toctou_segment, BugKind.TOCTOU),
                       (_emit_provenance_segment, BugKind.PROVENANCE),
                       (_emit_prio_segment, BugKind.PRIO_INVERSION),
                       (_emit_wakeup_segment, BugKind.LOST_WAKEUP)):
        here = [(i, k) for i, k in seeded_here if k is kind]
        if here:
            emit(builder, main, rng, config, prog_name, seg, next_label,
                 here[0][0], input_names, bugs)
            return

    if shortread_here or (not seeded_here and kind_roll <
                          config.syscall_probability):
        _emit_syscall_segment(builder, main, gen, rng, config, prog_name, seg,
                              next_label, seeded_here, bugs)
        return
    if not seeded_here and kind_roll < (config.syscall_probability +
                                        config.loop_probability):
        _emit_loop_segment(main, gen, rng, config, seg, next_label)
        return
    _emit_diamond_segment(builder, main, gen, rng, config, prog_name, seg,
                          next_label, seeded_here, bugs, helper_names,
                          input_names, deadlock_here)


def _emit_loop_segment(main, gen, rng, config, seg, next_label):
    label = f"seg{seg}"
    counter, bound = f"lc{seg}", f"lb{seg}"
    head, body = f"{label}_head", f"{label}_body"
    block = main.block(label)
    block.assign(counter, 0)
    block.assign(bound, _binop("+", _binop("%", gen.arith(1),
                                           Const(config.max_loop_iterations)),
                               Const(1)))
    block.jump(head)
    main.block(head).branch(_binop("<", Var(counter), Var(bound)),
                            body, next_label)
    bb = main.block(body)
    bb.assign(rng.choice(["t0", "t1", "t2", "t3"]), gen.arith(1))
    bb.assign(counter, _binop("+", Var(counter), Const(1)))
    bb.jump(head)


def _emit_syscall_segment(builder, main, gen, rng, config, prog_name, seg,
                          next_label, seeded_here, bugs):
    label = f"seg{seg}"
    fd, count = f"fd{seg}", f"rd{seg}"
    short_label, ok_label = f"{label}_short", f"{label}_ok"
    block = main.block(label)
    block.syscall(fd, "open", 1)
    block.syscall(count, "read", Var(fd), 64)
    block.branch(_binop("<", Var(count), Const(64)), short_label, ok_label)

    short = main.block(short_label)
    seeded = [b for b in seeded_here if b[1] is BugKind.SHORT_READ]
    if seeded:
        bug_index, _kind = seeded[0]
        bug = BugSpec(
            bug_id=f"{prog_name}-b{bug_index}",
            kind=BugKind.SHORT_READ,
            site_function="main",
            site_block=short_label,
            needs_fault=True,
        )
        bugs.append(bug)
        short.crash(bug.message)
        short.halt()
    else:
        # Handled short read: retry-free degradation.
        short.assign(count, 0)
        short.jump(next_label)
    main.block(ok_label).assign("t0", _binop("+", Var("t0"), Const(1))) \
        .jump(next_label)


def _emit_diamond_segment(builder, main, gen, rng, config, prog_name, seg,
                          next_label, seeded_here, bugs, helper_names,
                          input_names, deadlock_here):
    label = f"seg{seg}"
    then_label, else_label = f"{label}_t", f"{label}_e"
    block = main.block(label)
    block.assign(rng.choice(["t0", "t1", "t2", "t3"]), gen.arith(2))
    block.branch(gen.condition(), then_label, else_label)

    then_block = main.block(then_label)
    if helper_names and rng.random() < 0.5:
        then_block.call("t2", rng.choice(helper_names), gen.arith(1),
                        gen.arith(1))
    else:
        then_block.assign("t1", gen.arith(2))

    else_block = main.block(else_label)
    else_block.assign("t3", gen.arith(2))

    # Optional nesting: a bug-free diamond may host an inner diamond,
    # deepening the execution tree (richer path structure for tree and
    # guidance experiments). Short-circuit keeps the rng stream
    # untouched when the feature is off.
    if (not seeded_here and not deadlock_here
            and config.nested_probability > 0
            and rng.random() < config.nested_probability):
        inner_then, inner_else = f"{label}_nt", f"{label}_ne"
        then_block.branch(gen.condition(), inner_then, inner_else)
        main.block(inner_then).assign(
            rng.choice(["t0", "t1", "t2", "t3"]),
            gen.arith(1)).jump(next_label)
        main.block(inner_else).assign(
            rng.choice(["t0", "t1", "t2", "t3"]),
            gen.arith(1)).jump(next_label)
        else_block.jump(next_label)
        return

    # Non-deadlock input-gated bugs live inside the then-arm behind a
    # dedicated guard branch.
    gated = [(i, k) for i, k in seeded_here
             if k in (BugKind.CRASH, BugKind.ASSERT, BugKind.HANG)]
    cursor = then_block
    exit_label = next_label
    for bug_index, kind in gated:
        trigger = _random_trigger(rng, input_names, config)
        guard_label = f"{label}_g{bug_index}"
        site_label = f"{label}_bug{bug_index}"
        cont_label = f"{label}_c{bug_index}"
        cursor.jump(guard_label)
        guard = main.block(guard_label)
        guard.branch(_trigger_predicate(trigger), site_label, cont_label)
        bug = BugSpec(
            bug_id=f"{prog_name}-b{bug_index}",
            kind=kind,
            site_function="main",
            site_block=site_label,
            trigger=trigger,
            trigger_probability=config.input_domain ** -len(trigger),
        )
        bugs.append(bug)
        site = main.block(site_label)
        if kind is BugKind.CRASH:
            site.crash(bug.message)
            site.halt()
        elif kind is BugKind.ASSERT:
            site.check(0, bug.message)
            site.halt()
        else:  # HANG: tight self-loop, cut off by the step budget
            site.jump(site_label)
        cursor = main.block(cont_label)

    if deadlock_here:
        lock_a, lock_b = "lockA", "lockB"
        dl_bugs = [(i, k) for i, k in seeded_here if k is BugKind.DEADLOCK]
        bug_index, _k = dl_bugs[0]
        trigger = _random_trigger(rng, input_names, config)
        guard_label, region_label, cont_label = (
            f"{label}_dg", f"{label}_dl", f"{label}_dc")
        cursor.jump(guard_label)
        main.block(guard_label).branch(
            _trigger_predicate(trigger), region_label, cont_label)
        region = main.block(region_label)
        region.store_global("g_enter", 1)
        region.lock(lock_a)
        region.assign("t0", _binop("+", Var("t0"), Const(1)))
        region.lock(lock_b)
        region.assign("t1", _binop("+", Var("t1"), Const(1)))
        region.unlock(lock_b)
        region.unlock(lock_a)
        region.jump(cont_label)
        bugs.append(BugSpec(
            bug_id=f"{prog_name}-b{bug_index}",
            kind=BugKind.DEADLOCK,
            site_function="main",
            site_block=region_label,
            trigger=trigger,
            locks=(lock_a, lock_b),
            trigger_probability=config.input_domain ** -len(trigger),
            needs_schedule=True,
        ))
        cursor = main.block(cont_label)

    cursor.jump(exit_label)
    else_block.jump(exit_label)


def _emit_worker(builder: ProgramBuilder, bugs: List[BugSpec]) -> None:
    """The second thread of deadlock-seeded programs: waits for main to
    enter the racy region, then takes the same locks in *opposite*
    order — the classic AB/BA pattern."""
    worker = builder.function("worker")
    entry = worker.block("entry")
    entry.jump("poll")
    poll = worker.block("poll")
    poll.load_global("e", "g_enter")
    poll.branch(_binop("==", Var("e"), Const(1)), "grab", "checkdone")
    done = worker.block("checkdone")
    done.load_global("d", "g_done")
    done.branch(_binop("==", Var("d"), Const(1)), "out", "poll")
    grab = worker.block("grab")
    grab.lock("lockB")
    grab.assign("w0", 1)
    grab.lock("lockA")
    grab.assign("w1", 1)
    grab.unlock("lockA")
    grab.unlock("lockB")
    grab.jump("out")
    worker.block("out").halt()


# --------------------------------------------------------------------------
# New bug-family emitters (registry families: leak / prio_inversion /
# lost_wakeup / toctou / provenance)
# --------------------------------------------------------------------------

_LEAK_OPENS = 4


def _emit_leak_segment(builder, main, rng, config, prog_name, seg,
                       next_label, bug_index, input_names, bugs) -> None:
    """Resource leak: a loop opens a descriptor each iteration but the
    close path is skipped behind the trigger predicate. Descriptors are
    lowest-free, so the leak shows up as the fd climbing past the bound
    that a close-correct run never exceeds."""
    label = f"seg{seg}"
    trigger = _random_trigger(rng, input_names, config)
    head, body = f"{label}_lh", f"{label}_lb"
    use, close_lbl = f"{label}_lu", f"{label}_lc"
    skip, nxt, boom = f"{label}_ls", f"{label}_ln", f"{label}_boom"
    fd0, fdv = f"lfp{seg}", f"lfd{seg}"
    li, rd, cl = f"li{seg}", f"lrd{seg}", f"lcl{seg}"

    block = main.block(label)
    # Probe the base descriptor once (and give it back) so the leak
    # bound is relative: earlier segments may hold descriptors open.
    block.syscall(fd0, "open", 1)
    block.syscall(cl, "close", Var(fd0))
    block.assign(li, 0)
    block.branch(_binop("<", Var(fd0), Const(0)), next_label, head)
    main.block(head).branch(
        _binop("<", Var(li), Const(_LEAK_OPENS)), body, next_label)
    bb = main.block(body)
    bb.syscall(fdv, "open", 1)
    bb.branch(_binop(">", Var(fdv),
                     _binop("+", Var(fd0), Const(_LEAK_OPENS - 2))),
              boom, use)
    ub = main.block(use)
    ub.syscall(rd, "read", Var(fdv), 8)
    ub.branch(_trigger_predicate(trigger), skip, close_lbl)
    main.block(close_lbl).syscall(cl, "close", Var(fdv)).jump(nxt)
    main.block(skip).jump(nxt)
    nb = main.block(nxt)
    nb.assign(li, _binop("+", Var(li), Const(1)))
    nb.jump(head)

    bug = BugSpec(
        bug_id=f"{prog_name}-b{bug_index}",
        kind=BugKind.LEAK,
        site_function="main",
        site_block=boom,
        trigger=trigger,
        trigger_probability=config.input_domain ** -len(trigger),
        defect_function="main",
        defect_block=use,
    )
    bugs.append(bug)
    site = main.block(boom)
    site.crash(bug.message)
    site.halt()


def _emit_toctou_segment(builder, main, rng, config, prog_name, seg,
                         next_label, bug_index, input_names, bugs) -> None:
    """TOCTOU on the syscall layer: check with ``access``, then act with
    ``open`` — the resource can vanish between the two (modelled by a
    fault-plan-forced open failure), and the unguarded use crashes."""
    label = f"seg{seg}"
    trigger = _random_trigger(rng, input_names, config)
    chk, use = f"{label}_tchk", f"{label}_tuse"
    ok, boom = f"{label}_tok", f"{label}_boom"
    st, fdv, rd = f"tst{seg}", f"tfd{seg}", f"trd{seg}"

    main.block(label).branch(_trigger_predicate(trigger), chk, next_label)
    cb = main.block(chk)
    cb.syscall(st, "access", 1)
    cb.branch(_binop("==", Var(st), Const(0)), use, next_label)
    ub = main.block(use)
    ub.syscall(fdv, "open", 1)
    ub.branch(_binop("<", Var(fdv), Const(0)), boom, ok)
    main.block(ok).syscall(rd, "read", Var(fdv), 16).jump(next_label)

    bug = BugSpec(
        bug_id=f"{prog_name}-b{bug_index}",
        kind=BugKind.TOCTOU,
        site_function="main",
        site_block=boom,
        trigger=trigger,
        trigger_probability=config.input_domain ** -len(trigger),
        needs_fault=True,
        defect_function="main",
        defect_block=chk,
    )
    bugs.append(bug)
    site = main.block(boom)
    site.crash(bug.message)
    site.halt()


def _emit_provenance_segment(builder, main, rng, config, prog_name, seg,
                             next_label, bug_index, input_names,
                             bugs) -> None:
    """Provenance bug: the defect (a parse helper returning a poisoned
    zero) sits two calls away from the crash site in main — the bad
    value flows through an innocent scaling helper first."""
    label = f"seg{seg}"
    trigger = _random_trigger(rng, input_names, config)
    parse_fn, chain_fn = f"pv_parse{seg}", f"pv_chain{seg}"
    chk, boom = f"{label}_pchk", f"{label}_boom"
    tp, tu = f"pvp{seg}", f"pvu{seg}"

    parse = builder.function(parse_fn)
    pe = parse.block("entry")
    pe.branch(_trigger_predicate(trigger), "bad", "good")
    parse.block("bad").assign("r", 0).jump("out")
    parse.block("good").assign(
        "r", _binop("+", Const(1),
                    _binop("%", Input(input_names[0]),
                           Const(config.input_domain)))).jump("out")
    parse.block("out").ret(Var("r"))
    chain = builder.function(chain_fn, params=("v",))
    ce = chain.block("entry")
    ce.assign("r2", _binop("+", Var("v"), Var("v")))
    ce.ret(Var("r2"))

    block = main.block(label)
    block.call(tp, parse_fn)
    block.call(tu, chain_fn, Var(tp))
    block.jump(chk)
    main.block(chk).branch(_binop("==", Var(tu), Const(0)), boom, next_label)

    bug = BugSpec(
        bug_id=f"{prog_name}-b{bug_index}",
        kind=BugKind.PROVENANCE,
        site_function="main",
        site_block=boom,
        trigger=trigger,
        trigger_probability=config.input_domain ** -len(trigger),
        defect_function=parse_fn,
        defect_block="entry",
        defect_distance=2,
    )
    bugs.append(bug)
    site = main.block(boom)
    site.crash(bug.message)
    site.halt()


def _emit_prio_segment(builder, main, rng, config, prog_name, seg,
                       next_label, bug_index, input_names, bugs) -> None:
    """High-priority critical section in main; the matching low/mid
    threads come from :func:`_emit_prio_threads` (reading this bug's
    trigger). Under priority scheduling with staggered arrivals the mid
    thread starves the low-priority lock holder — classic inversion."""
    label = f"seg{seg}"
    trigger = _random_trigger(rng, input_names, config)
    crit = f"{label}_pcrit"

    main.block(label).branch(_trigger_predicate(trigger), crit, next_label)
    cb = main.block(crit)
    cb.lock("prioL")
    cb.assign("t0", _binop("+", Var("t0"), Const(1)))
    cb.unlock("prioL")
    cb.store_global("g_hp_done", 1)
    cb.jump(next_label)

    bugs.append(BugSpec(
        bug_id=f"{prog_name}-b{bug_index}",
        kind=BugKind.PRIO_INVERSION,
        site_function="mid",
        site_block="spin",
        trigger=trigger,
        locks=("prioL",),
        trigger_probability=config.input_domain ** -len(trigger),
        needs_schedule=True,
        defect_function="main",
        defect_block=label,
    ))


def _emit_prio_threads(builder: ProgramBuilder, bugs: List[BugSpec]) -> None:
    """The mid/low threads of a priority-inversion program. ``mid`` is
    an unbounded spinner (bounded only by main's progress flags); ``low``
    takes the shared lock behind the same trigger gate as main."""
    bug = next(b for b in bugs if b.kind is BugKind.PRIO_INVERSION)
    lock = bug.locks[0]

    mid = builder.function("mid")
    mid.block("entry").jump("spin")
    spin = mid.block("spin")
    spin.load_global("h", "g_hp_done")
    spin.load_global("d", "g_done")
    spin.assign("m0", _binop("+", Var("m0"), Const(1)))
    spin.branch(_binop("or", _binop("==", Var("h"), Const(1)),
                       _binop("==", Var("d"), Const(1))), "mout", "spin")
    mid.block("mout").halt()

    low = builder.function("low")
    low.block("entry").branch(_trigger_predicate(bug.trigger),
                              "lcrit", "lend")
    lc = low.block("lcrit")
    lc.lock(lock)
    lc.assign("lw", 0)
    lc.jump("lwork")
    low.block("lwork").branch(_binop("<", Var("lw"), Const(12)),
                              "lbody", "lrel")
    lb = low.block("lbody")
    lb.assign("lw", _binop("+", Var("lw"), Const(1)))
    lb.jump("lwork")
    lr = low.block("lrel")
    lr.unlock(lock)
    lr.jump("lend")
    low.block("lend").halt()


def _emit_wakeup_segment(builder, main, rng, config, prog_name, seg,
                         next_label, bug_index, input_names, bugs) -> None:
    """Lost wakeup: the waiter checks ``g_sig`` and only *then* registers
    as waiting — a one-shot notifier that reads ``g_waiting`` inside
    that window never sets ``g_wake``, and the waiter spins forever."""
    label = f"seg{seg}"
    trigger = _random_trigger(rng, input_names, config)
    begin, reg, wait_lbl = (f"{label}_wbegin", f"{label}_wreg",
                            f"{label}_wwait")
    s, wk = f"ws{seg}", f"ww{seg}"

    main.block(label).branch(_trigger_predicate(trigger), begin, next_label)
    bb = main.block(begin)
    bb.load_global(s, "g_sig")
    bb.branch(_binop("==", Var(s), Const(1)), next_label, reg)
    rb = main.block(reg)
    rb.store_global("g_waiting", 1)
    rb.jump(wait_lbl)
    wb = main.block(wait_lbl)
    wb.load_global(wk, "g_wake")
    wb.branch(_binop("==", Var(wk), Const(1)), next_label, wait_lbl)

    bugs.append(BugSpec(
        bug_id=f"{prog_name}-b{bug_index}",
        kind=BugKind.LOST_WAKEUP,
        site_function="main",
        site_block=wait_lbl,
        trigger=trigger,
        trigger_probability=config.input_domain ** -len(trigger),
        needs_schedule=True,
        defect_function="main",
        defect_block=label,
    ))


def _emit_wakeup_worker(builder: ProgramBuilder) -> None:
    """One-shot notifier: a short preamble, then signal and wake whoever
    has already registered as waiting (nobody else, ever)."""
    worker = builder.function("worker")
    worker.block("entry").assign("w", 0).jump("prep")
    worker.block("prep").branch(_binop("<", Var("w"), Const(3)),
                                "pbody", "notify")
    pb = worker.block("pbody")
    pb.assign("w", _binop("+", Var("w"), Const(1)))
    pb.jump("prep")
    nb = worker.block("notify")
    nb.store_global("g_sig", 1)
    nb.load_global("gw", "g_waiting")
    nb.branch(_binop("==", Var("gw"), Const(1)), "dowake", "wout")
    dw = worker.block("dowake")
    dw.store_global("g_wake", 1)
    dw.jump("wout")
    worker.block("wout").halt()


_RACE_INCREMENTS = 3


def _emit_race_segment(main, prog_name, seg, next_label, bug_index,
                       bugs: List[BugSpec]) -> None:
    """Main-thread half of the racy counter: an unsynchronized
    load-increment-store loop over the shared counter."""
    label = f"seg{seg}"
    head, body = f"{label}_rhead", f"{label}_rbody"
    block = main.block(label)
    block.assign("ri", 0)
    block.jump(head)
    main.block(head).branch(
        _binop("<", Var("ri"), Const(_RACE_INCREMENTS)), body, next_label)
    bb = main.block(body)
    bb.load_global("rt", "g_cnt")
    bb.assign("rt", _binop("+", Var("rt"), Const(1)))
    bb.store_global("g_cnt", Var("rt"))
    bb.assign("ri", _binop("+", Var("ri"), Const(1)))
    bb.jump(head)
    bugs.append(BugSpec(
        bug_id=f"{prog_name}-b{bug_index}",
        kind=BugKind.RACE,
        site_function="main",
        site_block=body,
        needs_schedule=True,
    ))


def _emit_race_worker(builder: ProgramBuilder) -> None:
    """Worker half: the same unsynchronized increments, then signal."""
    worker = builder.function("worker")
    worker.block("entry").assign("wi", 0).jump("whead")
    worker.block("whead").branch(
        _binop("<", Var("wi"), Const(_RACE_INCREMENTS)), "wbody", "wdone")
    wb = worker.block("wbody")
    wb.load_global("wt", "g_cnt")
    wb.assign("wt", _binop("+", Var("wt"), Const(1)))
    wb.store_global("g_cnt", Var("wt"))
    wb.assign("wi", _binop("+", Var("wi"), Const(1)))
    wb.jump("whead")
    done = worker.block("wdone")
    done.store_global("g_wdone", 1)
    done.halt()


def _random_trigger(rng: random.Random, input_names: Sequence[str],
                    config: CorpusConfig) -> Dict[str, int]:
    chosen = rng.sample(list(input_names), config.bug_rarity)
    return {name: rng.randrange(config.input_domain) for name in sorted(chosen)}


def generate_corpus(config: Optional[CorpusConfig] = None,
                    n_programs: int = 10,
                    bug_kinds: Sequence[BugKind] = (BugKind.CRASH,),
                    ) -> List[SeededProgram]:
    """Generate ``n_programs`` programs, all seeded with ``bug_kinds``."""
    config = config or CorpusConfig()
    return [
        generate_program(f"prog{i:03d}", config, bug_kinds, seed_offset=i)
        for i in range(n_programs)
    ]


# --------------------------------------------------------------------------
# Hand-written demo programs (used by examples and tests)
# --------------------------------------------------------------------------

def make_crash_demo() -> SeededProgram:
    """A tiny program that crashes iff n == 7 and mode == 2."""
    b = ProgramBuilder("crash_demo", inputs={"n": (0, 9), "mode": (0, 3)})
    main = b.function("main")
    entry = main.block("entry")
    entry.assign("x", _binop("+", Input("n"), Const(1)))
    entry.branch(_binop("==", Input("mode"), Const(2)), "m2", "other")
    m2 = main.block("m2")
    m2.branch(_binop("==", Input("n"), Const(7)), "boom", "safe")
    boom = main.block("boom")
    boom.crash("bug:crash:crash_demo-b0")
    boom.halt()
    main.block("safe").assign("x", _binop("*", Var("x"), Const(2))).jump("end")
    main.block("other").assign("x", 0).jump("end")
    main.block("end").halt()
    bug = BugSpec(
        bug_id="crash_demo-b0", kind=BugKind.CRASH,
        site_function="main", site_block="boom",
        trigger={"n": 7, "mode": 2}, trigger_probability=1.0 / 40)
    return SeededProgram(program=b.build(), bugs=[bug])


def make_deadlock_demo() -> SeededProgram:
    """Two threads taking locks A and B in opposite orders."""
    b = ProgramBuilder("deadlock_demo", inputs={"go": (0, 1)},
                       threads=("main", "worker"),
                       global_vars={"g_enter": 0, "g_done": 0})
    main = b.function("main")
    entry = main.block("entry")
    entry.branch(_binop("==", Input("go"), Const(1)), "region", "end")
    region = main.block("region")
    region.store_global("g_enter", 1)
    region.lock("A")
    region.assign("x", 1)
    region.lock("B")
    region.unlock("B")
    region.unlock("A")
    region.jump("end")
    end = main.block("end")
    end.store_global("g_done", 1)
    end.halt()

    worker = b.function("worker")
    worker.block("entry").jump("poll")
    poll = worker.block("poll")
    poll.load_global("e", "g_enter")
    poll.branch(_binop("==", Var("e"), Const(1)), "grab", "chk")
    chk = worker.block("chk")
    chk.load_global("d", "g_done")
    chk.branch(_binop("==", Var("d"), Const(1)), "out", "poll")
    grab = worker.block("grab")
    grab.lock("B")
    grab.assign("y", 1)
    grab.lock("A")
    grab.unlock("A")
    grab.unlock("B")
    grab.jump("out")
    worker.block("out").halt()
    bug = BugSpec(
        bug_id="deadlock_demo-b0", kind=BugKind.DEADLOCK,
        site_function="main", site_block="region",
        trigger={"go": 1}, locks=("A", "B"), needs_schedule=True,
        trigger_probability=0.5)
    return SeededProgram(program=b.build(), bugs=[bug])


def make_shortread_demo() -> SeededProgram:
    """Crashes when read() returns fewer bytes than requested."""
    b = ProgramBuilder("shortread_demo", inputs={"sz": (1, 64)})
    main = b.function("main")
    entry = main.block("entry")
    entry.syscall("fd", "open", 1)
    entry.branch(_binop("<", Var("fd"), Const(0)), "end", "doread")
    doread = main.block("doread")
    doread.syscall("got", "read", Var("fd"), Input("sz"))
    doread.branch(_binop("<", Var("got"), Input("sz")), "boom", "end")
    boom = main.block("boom")
    boom.crash("bug:short_read:shortread_demo-b0")
    boom.halt()
    main.block("end").halt()
    bug = BugSpec(
        bug_id="shortread_demo-b0", kind=BugKind.SHORT_READ,
        site_function="main", site_block="boom", needs_fault=True)
    return SeededProgram(program=b.build(), bugs=[bug])


def make_race_demo() -> SeededProgram:
    """Two threads increment a shared counter without locking; a final
    assertion on the total exposes lost updates (schedule-dependent)."""
    b = ProgramBuilder("race_demo", inputs={"k": (1, 3)},
                       threads=("main", "worker"),
                       global_vars={"g_cnt": 0, "g_wdone": 0})
    main = b.function("main")
    entry = main.block("entry")
    entry.assign("i", 0)
    entry.jump("head")
    main.block("head").branch(_binop("<", Var("i"), Const(3)),
                              "body", "wait")
    body = main.block("body")
    body.load_global("t", "g_cnt")
    body.assign("t", _binop("+", Var("t"), Const(1)))
    body.store_global("g_cnt", Var("t"))
    body.assign("i", _binop("+", Var("i"), Const(1)))
    body.jump("head")
    wait = main.block("wait")
    wait.load_global("d", "g_wdone")
    wait.branch(_binop("==", Var("d"), Const(1)), "checkcnt", "wait")
    chk = main.block("checkcnt")
    chk.load_global("c", "g_cnt")
    chk.check(_binop("==", Var("c"), Const(6)),
              "bug:race:race_demo-b0")
    chk.halt()

    worker = b.function("worker")
    worker.block("entry").assign("j", 0).jump("whead")
    worker.block("whead").branch(_binop("<", Var("j"), Const(3)),
                                 "wbody", "wdone")
    wb = worker.block("wbody")
    wb.load_global("u", "g_cnt")
    wb.assign("u", _binop("+", Var("u"), Const(1)))
    wb.store_global("g_cnt", Var("u"))
    wb.assign("j", _binop("+", Var("j"), Const(1)))
    wb.jump("whead")
    done = worker.block("wdone")
    done.store_global("g_wdone", 1)
    done.halt()

    bug = BugSpec(
        bug_id="race_demo-b0", kind=BugKind.RACE,
        site_function="main", site_block="body",
        needs_schedule=True)
    return SeededProgram(program=b.build(), bugs=[bug])


def make_leak_demo() -> SeededProgram:
    """Opens four descriptors in a loop; when mode == 3 the close path
    is skipped, descriptors climb, and the bound check trips."""
    b = ProgramBuilder("leak_demo", inputs={"mode": (0, 3)})
    main = b.function("main")
    entry = main.block("entry")
    entry.assign("i", 0)
    entry.jump("lk_head")
    main.block("lk_head").branch(_binop("<", Var("i"), Const(4)),
                                 "lk_body", "end")
    body = main.block("lk_body")
    body.syscall("fd", "open", 1)
    body.branch(_binop(">", Var("fd"), Const(5)), "boom", "lk_use")
    use = main.block("lk_use")
    use.syscall("rd", "read", Var("fd"), 8)
    use.branch(_binop("==", Input("mode"), Const(3)), "lk_skip", "lk_close")
    main.block("lk_close").syscall("cl", "close", Var("fd")).jump("lk_next")
    main.block("lk_skip").jump("lk_next")
    nxt = main.block("lk_next")
    nxt.assign("i", _binop("+", Var("i"), Const(1)))
    nxt.jump("lk_head")
    boom = main.block("boom")
    boom.crash("bug:leak:leak_demo-b0")
    boom.halt()
    main.block("end").halt()
    bug = BugSpec(
        bug_id="leak_demo-b0", kind=BugKind.LEAK,
        site_function="main", site_block="boom",
        trigger={"mode": 3}, trigger_probability=0.25,
        defect_function="main", defect_block="lk_use")
    return SeededProgram(program=b.build(), bugs=[bug])


def make_prio_demo() -> SeededProgram:
    """Three threads: a high-priority main, an unbounded mid spinner,
    and a low-priority thread holding the lock main needs. Under strict
    priority scheduling with staggered arrivals, mid starves low and
    main never gets the lock (priority inversion)."""
    b = ProgramBuilder("prio_demo", inputs={"load": (0, 3)},
                       threads=("main", "mid", "low"),
                       global_vars={"g_hp_done": 0, "g_done": 0})
    main = b.function("main")
    entry = main.block("entry")
    entry.branch(_binop("==", Input("load"), Const(2)), "crit", "end")
    crit = main.block("crit")
    crit.lock("P")
    crit.assign("x", 1)
    crit.unlock("P")
    crit.store_global("g_hp_done", 1)
    crit.jump("end")
    end = main.block("end")
    end.store_global("g_done", 1)
    end.halt()

    mid = b.function("mid")
    mid.block("entry").jump("spin")
    spin = mid.block("spin")
    spin.load_global("h", "g_hp_done")
    spin.load_global("d", "g_done")
    spin.assign("m", _binop("+", Var("m"), Const(1)))
    spin.branch(_binop("or", _binop("==", Var("h"), Const(1)),
                       _binop("==", Var("d"), Const(1))), "mout", "spin")
    mid.block("mout").halt()

    low = b.function("low")
    low.block("entry").branch(_binop("==", Input("load"), Const(2)),
                              "lcrit", "lend")
    lc = low.block("lcrit")
    lc.lock("P")
    lc.assign("li", 0)
    lc.jump("lwork")
    low.block("lwork").branch(_binop("<", Var("li"), Const(12)),
                              "lbody", "lrel")
    lb = low.block("lbody")
    lb.assign("li", _binop("+", Var("li"), Const(1)))
    lb.jump("lwork")
    lr = low.block("lrel")
    lr.unlock("P")
    lr.jump("lend")
    low.block("lend").halt()
    bug = BugSpec(
        bug_id="prio_demo-b0", kind=BugKind.PRIO_INVERSION,
        site_function="mid", site_block="spin",
        trigger={"load": 2}, locks=("P",), needs_schedule=True,
        trigger_probability=0.25,
        defect_function="main", defect_block="entry")
    return SeededProgram(program=b.build(), bugs=[bug])


def make_wakeup_demo() -> SeededProgram:
    """Check-then-register waiter vs a one-shot notifier: if the notify
    lands between the waiter's g_sig check and its g_waiting store, the
    wakeup is lost and the waiter spins forever."""
    b = ProgramBuilder("wakeup_demo", inputs={"req": (0, 3)},
                       threads=("main", "worker"),
                       global_vars={"g_sig": 0, "g_waiting": 0, "g_wake": 0})
    main = b.function("main")
    entry = main.block("entry")
    entry.branch(_binop("==", Input("req"), Const(1)), "begin", "end")
    begin = main.block("begin")
    begin.load_global("s", "g_sig")
    begin.branch(_binop("==", Var("s"), Const(1)), "end", "reg")
    reg = main.block("reg")
    reg.store_global("g_waiting", 1)
    reg.jump("wait")
    wait = main.block("wait")
    wait.load_global("wk", "g_wake")
    wait.branch(_binop("==", Var("wk"), Const(1)), "end", "wait")
    main.block("end").halt()

    worker = b.function("worker")
    worker.block("entry").assign("w", 0).jump("prep")
    worker.block("prep").branch(_binop("<", Var("w"), Const(2)),
                                "pbody", "notify")
    pb = worker.block("pbody")
    pb.assign("w", _binop("+", Var("w"), Const(1)))
    pb.jump("prep")
    nb = worker.block("notify")
    nb.store_global("g_sig", 1)
    nb.load_global("gw", "g_waiting")
    nb.branch(_binop("==", Var("gw"), Const(1)), "dowake", "wout")
    dw = worker.block("dowake")
    dw.store_global("g_wake", 1)
    dw.jump("wout")
    worker.block("wout").halt()
    bug = BugSpec(
        bug_id="wakeup_demo-b0", kind=BugKind.LOST_WAKEUP,
        site_function="main", site_block="wait",
        trigger={"req": 1}, needs_schedule=True,
        trigger_probability=0.25,
        defect_function="main", defect_block="entry")
    return SeededProgram(program=b.build(), bugs=[bug])


def make_toctou_demo() -> SeededProgram:
    """access() says the resource exists; by the time open() runs it is
    gone (a forced fault), and the unguarded failure path crashes."""
    b = ProgramBuilder("toctou_demo", inputs={"path": (0, 3)})
    main = b.function("main")
    entry = main.block("entry")
    entry.branch(_binop("==", Input("path"), Const(1)), "chk", "end")
    chk = main.block("chk")
    chk.syscall("st", "access", 1)
    chk.branch(_binop("==", Var("st"), Const(0)), "use", "end")
    use = main.block("use")
    use.syscall("fd", "open", 1)
    use.branch(_binop("<", Var("fd"), Const(0)), "boom", "okread")
    main.block("okread").syscall("rd", "read", Var("fd"), 16).jump("end")
    boom = main.block("boom")
    boom.crash("bug:toctou:toctou_demo-b0")
    boom.halt()
    main.block("end").halt()
    bug = BugSpec(
        bug_id="toctou_demo-b0", kind=BugKind.TOCTOU,
        site_function="main", site_block="boom",
        trigger={"path": 1}, trigger_probability=0.25, needs_fault=True,
        defect_function="main", defect_block="chk")
    return SeededProgram(program=b.build(), bugs=[bug])


def make_provenance_demo() -> SeededProgram:
    """The defect (pv_parse returning a poisoned zero when q == 5) is
    two call hops away from the crash site in main."""
    b = ProgramBuilder("prov_demo", inputs={"q": (0, 7)})
    parse = b.function("pv_parse")
    pe = parse.block("entry")
    pe.branch(_binop("==", Input("q"), Const(5)), "bad", "good")
    parse.block("bad").assign("r", 0).jump("out")
    parse.block("good").assign(
        "r", _binop("+", Const(1), _binop("%", Input("q"), Const(7)))) \
        .jump("out")
    parse.block("out").ret(Var("r"))
    scale = b.function("pv_scale", params=("v",))
    se = scale.block("entry")
    se.assign("r2", _binop("+", Var("v"), Var("v")))
    se.ret(Var("r2"))

    main = b.function("main")
    entry = main.block("entry")
    entry.call("t", "pv_parse")
    entry.call("u", "pv_scale", Var("t"))
    entry.jump("chk")
    main.block("chk").branch(_binop("==", Var("u"), Const(0)), "boom", "end")
    boom = main.block("boom")
    boom.crash("bug:provenance:prov_demo-b0")
    boom.halt()
    main.block("end").halt()
    bug = BugSpec(
        bug_id="prov_demo-b0", kind=BugKind.PROVENANCE,
        site_function="main", site_block="boom",
        trigger={"q": 5}, trigger_probability=0.125,
        defect_function="pv_parse", defect_block="entry",
        defect_distance=2)
    return SeededProgram(program=b.build(), bugs=[bug])
