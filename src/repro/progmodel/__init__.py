"""Program model substrate.

SoftBorg reasons about programs only through their control-flow
by-products. This subpackage provides the program representation that
produces those by-products: a small structured IR (:mod:`repro.progmodel.ir`),
a fluent builder (:mod:`repro.progmodel.builder`), a concrete
multi-threaded interpreter (:mod:`repro.progmodel.interpreter`), and a
corpus generator that seeds realistic bug patterns
(:mod:`repro.progmodel.corpus`).
"""

from repro.progmodel.ir import (
    BinOp,
    Block,
    Branch,
    Call,
    Const,
    Crash,
    Expr,
    Function,
    Halt,
    Input,
    Instruction,
    Jump,
    Lock,
    Assert,
    Assign,
    Program,
    Return,
    StoreGlobal,
    LoadGlobal,
    Syscall,
    UnOp,
    Unlock,
    Var,
    c,
    v,
)
from repro.progmodel.builder import BlockBuilder, FunctionBuilder, ProgramBuilder
from repro.progmodel.interpreter import (
    Environment,
    ExecutionLimits,
    ExecutionResult,
    Interpreter,
    InputVector,
)
from repro.progmodel.bugs import BugKind, BugSpec
from repro.progmodel.corpus import (
    CorpusConfig,
    generate_corpus,
    generate_program,
    make_crash_demo,
    make_deadlock_demo,
    make_leak_demo,
    make_prio_demo,
    make_provenance_demo,
    make_race_demo,
    make_shortread_demo,
    make_toctou_demo,
    make_wakeup_demo,
)

__all__ = [
    "Expr", "Const", "Var", "Input", "BinOp", "UnOp", "c", "v",
    "Instruction", "Assign", "Branch", "Jump", "Call", "Return", "Lock",
    "Unlock", "Syscall", "Assert", "Crash", "Halt", "StoreGlobal",
    "LoadGlobal", "Block", "Function", "Program",
    "ProgramBuilder", "FunctionBuilder", "BlockBuilder",
    "Interpreter", "Environment", "ExecutionLimits", "ExecutionResult",
    "InputVector",
    "BugKind", "BugSpec", "CorpusConfig", "generate_corpus", "generate_program",
]
