"""The networked platform: Figure 1 over an actual (simulated) network.

Where :class:`~repro.platform.SoftBorgPlatform` runs the loop in
synchronous rounds (fast, deterministic, ideal for experiments), this
variant runs it *event-driven* on the discrete-event network: pods
execute on their own Poisson-ish clocks, ship encoded traces through
the retransmitting transport across lossy links, the hive ingests on
arrival and periodically analyzes/fixes, and fix announcements travel
back over the same unreliable links. Time-to-mitigation becomes a
*virtual-seconds* quantity that depends on network quality — the E16
experiment.

Wire discipline matters here: traces cross the network as *bytes*
(``encode_trace``/``decode_trace``), program updates as version-stamped
fix payloads the pod applies locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import (
    BaseConfig, BaseReport, check_at_least_one, check_positive,
    check_unit_interval,
)
from repro.errors import ConfigError
from repro.hive.hive import Hive
from repro.metrics.series import Series
from repro.net.network import Link, Network
from repro.net.simclock import SimClock
from repro.net.transport import ReliableTransport
from repro.obs import Instrumented
from repro.obs.trace import derive_trace_id, get_tracer
from repro.pod.pod import Pod
from repro.progmodel.interpreter import ExecutionLimits
from repro.rng import make_rng
from repro.progmodel.serialize import decode_program, encode_program
from repro.tracing.capture import FullCapture
from repro.tracing.encode import decode_trace, encode_trace
from repro.workloads.scenarios import Scenario

__all__ = ["NetworkedConfig", "NetworkedReport", "NetworkedPlatform"]

HIVE_ENDPOINT = "hive"

# Every logical send pays fixed framing on top of its payload (headers,
# checksums, ack bookkeeping). Batching exists to amortize this cost.
MESSAGE_OVERHEAD_BYTES = 40


@dataclass
class NetworkedConfig(BaseConfig):
    """Knobs of the event-driven deployment."""

    n_pods: int = 10
    duration: float = 400.0            # virtual seconds
    mean_think_time: float = 5.0       # seconds between a pod's runs
    analysis_interval: float = 20.0    # hive analyze/fix cadence
    latency: float = 0.05
    loss_rate: float = 0.0
    max_steps: int = 4000
    seed: int = 0
    batch_max_traces: int = 1          # 1 = one trace per message
    chaos_profile: object = "none"     # profile name or FaultProfile
    solver_cache: str = "none"         # none | local | collective

    def validate(self) -> None:
        check_at_least_one(self.n_pods, "need at least one pod")
        check_positive(self.mean_think_time, "mean_think_time",
                       message="times must be positive")
        check_positive(self.analysis_interval, "analysis_interval",
                       message="times must be positive")
        check_unit_interval(self.loss_rate, "loss_rate")
        check_at_least_one(self.batch_max_traces,
                           "batch_max_traces must be >= 1")
        if self.solver_cache not in ("none", "local", "collective"):
            raise ConfigError(
                "solver_cache must be one of none, local, collective")
        self.resolved_chaos_profile()      # raises on unknown/bad

    def resolved_chaos_profile(self):
        """The validated :class:`~repro.chaos.FaultProfile` in force."""
        from repro.chaos import resolve_profile
        return resolve_profile(self.chaos_profile)


@dataclass
class NetworkedReport(BaseReport):
    executions: int = 0
    failures: int = 0
    traces_delivered: int = 0
    wire_bytes: int = 0
    fixes: List[str] = field(default_factory=list)
    fix_deployed_at: Optional[float] = None
    last_failure_at: Optional[float] = None
    all_pods_current_at: Optional[float] = None
    failure_times: List[float] = field(default_factory=list)
    density: Series = field(default_factory=lambda: Series("fails/1k"))

    @property
    def mitigation_latency(self) -> Optional[float]:
        """Virtual seconds from first failure to last failure."""
        if not self.failure_times or self.fix_deployed_at is None:
            return None
        return self.failure_times[-1] - self.failure_times[0]

    def as_dict(self) -> Dict[str, object]:
        return {
            "executions": self.executions,
            "failures": self.failures,
            "traces_delivered": self.traces_delivered,
            "wire_bytes": self.wire_bytes,
            "fixes": list(self.fixes),
            "fix_deployed_at": self.fix_deployed_at,
            "last_failure_at": self.last_failure_at,
            "all_pods_current_at": self.all_pods_current_at,
            "mitigation_latency": self.mitigation_latency,
        }


class _NetPod:
    """A pod wired to the network: runs, ships, applies updates.

    With chaos enabled, this is where three fault kinds land: the pod
    can crash mid-trace (the execution happened, its trace is lost,
    and the pod stays down for ``crash_downtime`` virtual seconds),
    its uplink can drop/duplicate/corrupt whole messages *before* the
    transport sees them (beyond what :class:`~repro.net.network.Link`
    models), and its clock can run fast or slow by a constant per-pod
    skew factor applied to think time.
    """

    def __init__(self, platform: "NetworkedPlatform", index: int):
        self.platform = platform
        self.index = index
        self.pod = Pod(
            pod_id=f"netpod{index:03d}",
            program=platform.scenario.program,
            capture=FullCapture(),
            limits=ExecutionLimits(max_steps=platform.config.max_steps),
            fault_rate=platform.scenario.fault_rate,
            seed=platform.config.seed + index,
        )
        self._rng = make_rng(platform.config.seed, "netpod", index)
        self._tracer = platform._tracer
        self._uplink_seq = 0
        self.transport = ReliableTransport(
            platform.network, self.pod.pod_id,
            receiver=self._on_message)
        # batch_max_traces > 1 turns on uplink batching: traces
        # accumulate locally and ship as one ("batch", bytes) message
        # per full TraceBatch, amortizing per-message overhead.
        self._accumulator = None
        self._run_index = 0
        self._exec_index = 0       # chaos coordinate: pod-crash draws
        self._message_index = 0    # chaos coordinate: uplink draws
        # Clock skew is a constant per-pod factor, fixed at build time.
        plan = platform.chaos_plan
        self._skew = plan.clock_skew(index) if plan is not None else 1.0
        if platform.config.batch_max_traces > 1:
            from repro.exec.batch import BatchAccumulator
            self._accumulator = BatchAccumulator(
                index, platform.scenario.program.name,
                platform.scenario.program.version,
                max_traces=platform.config.batch_max_traces)
        self._schedule_next_run()

    def _schedule_next_run(self) -> None:
        clock = self.platform.clock
        if clock.now >= self.platform.config.duration:
            return
        delay = self._rng.expovariate(
            1.0 / self.platform.config.mean_think_time)
        clock.schedule(delay * self._skew, self._run_once)

    def _run_once(self) -> None:
        platform = self.platform
        if platform.clock.now >= platform.config.duration:
            return
        with self._tracer.span("pod.run",
                               key=(self.index, self._exec_index),
                               pod=self.index) as span:
            _user, inputs = platform.scenario.population.sample_execution()
            run = self.pod.execute(inputs)
            span.set(outcome=run.result.outcome.value)
            platform.report.executions += 1
            if run.result.outcome.is_failure:
                platform.report.failures += 1
                platform.report.failure_times.append(platform.clock.now)
                platform.report.last_failure_at = platform.clock.now
            exec_index = self._exec_index
            self._exec_index += 1
            plan = platform.chaos_plan
            if plan is not None and plan.pod_crashes(self.index,
                                                    exec_index):
                # Crash mid-trace: the user saw the execution, the
                # platform never gets its trace, and the pod stays down
                # before resuming its schedule.
                platform.count_chaos("pod_crashes")
                span.event("chaos.pod_crash", pod=self.index)
                platform.clock.schedule(plan.profile.crash_downtime,
                                        self._schedule_next_run)
                return
            with self._tracer.span("wire.encode",
                                   key=(self.index, exec_index)):
                payload = encode_trace(run.trace)
            if self._accumulator is None:
                self._uplink("trace", payload)
            else:
                from repro.exec.batch import BatchEntry
                self._accumulator.add(BatchEntry(
                    global_index=self._run_index, payload=payload))
                self._run_index += 1
                self._send_full_batches()
        self._schedule_next_run()

    def _uplink(self, kind: str, blob: bytes) -> None:
        """Ship one message to the hive through the chaos uplink.

        The uplink span is the *send-side* anchor: the transport
        captures its context into the message, so the hive's delivery
        span (and everything ingested under it) parents here.
        """
        platform = self.platform
        seq = self._uplink_seq
        self._uplink_seq += 1
        with self._tracer.span("net.uplink", key=(self.index, seq),
                               kind=kind, bytes=len(blob)) as span:
            size = MESSAGE_OVERHEAD_BYTES + len(blob)
            platform.report.wire_bytes += size
            plan = platform.chaos_plan
            if plan is not None:
                message_index = self._message_index
                self._message_index += 1
                if plan.uplink_dropped(self.index, message_index):
                    # Black-holed before the transport ever saw it — no
                    # retransmission machinery can save this one.
                    platform.count_chaos("uplink_dropped")
                    span.event("chaos.uplink_dropped", pod=self.index)
                    return
                if plan.uplink_corrupted(self.index, message_index):
                    platform.count_chaos("uplink_corrupted")
                    span.event("chaos.uplink_corrupted", pod=self.index)
                    blob = plan.corrupt_bytes(blob, self.index,
                                              message_index)
                if plan.uplink_duplicated(self.index, message_index):
                    platform.count_chaos("uplink_duplicated")
                    span.event("chaos.uplink_duplicated", pod=self.index)
                    platform.report.wire_bytes += size
                    self.transport.send(HIVE_ENDPOINT, (kind, blob))
            self.transport.send(HIVE_ENDPOINT, (kind, blob))

    def _send_full_batches(self) -> None:
        from repro.exec.batch import encode_batch
        for batch in self._accumulator.take_full():
            self._uplink("batch", encode_batch(batch))

    def flush(self) -> None:
        """Ship whatever is still buffering (end of simulation)."""
        if self._accumulator is None or not self._accumulator.pending():
            return
        from repro.exec.batch import encode_batch
        for batch in self._accumulator.drain_batches():
            self._uplink("batch", encode_batch(batch))

    def _on_message(self, src: str, message: object) -> None:
        kind, body = message
        if kind == "update":
            version, payload = body
            if version > self.pod.version:
                # Updates cross the wire as encoded program bytes.
                self.pod.apply_update(decode_program(payload))
                self.platform.on_pod_updated()


class NetworkedPlatform(Instrumented):
    """Event-driven pods + hive on one simulated network."""

    obs_namespace = "netplatform"

    def __init__(self, scenario: Scenario,
                 config: Optional[NetworkedConfig] = None):
        self.config = config or NetworkedConfig()
        self.config.validate()
        self.scenario = scenario
        # Resolved once; the trace id is a pure function of the
        # (program, seed) pair, like the synchronous platform's.
        self._tracer = get_tracer()
        if self._tracer.enabled:
            self._tracer.set_trace_id(derive_trace_id(
                "net", scenario.program.name, self.config.seed))
        self._decode_seq = 0
        self._tick_seq = 0
        self._obs_traces_delivered = self.obs_counter("traces_delivered")
        self._obs_analysis_ticks = self.obs_counter("analysis_ticks")
        self._obs_rejected = self.obs_counter("frames_rejected")
        # Chaos: a stateless seeded fault oracle shared by every pod
        # (None when the profile is a no-op — the default).
        profile = self.config.resolved_chaos_profile()
        self.chaos_plan = None
        self.chaos_events: Dict[str, int] = {}
        if not profile.is_noop():
            from repro.chaos import FaultPlan
            self.chaos_plan = FaultPlan(profile, seed=self.config.seed)
            self.chaos_events = {
                "pod_crashes": 0, "uplink_dropped": 0,
                "uplink_duplicated": 0, "uplink_corrupted": 0,
                "frames_rejected": 0,
            }
        self.clock = SimClock()
        self.network = Network(
            self.clock,
            default_link=Link(latency=self.config.latency,
                              loss_rate=self.config.loss_rate),
            rng=make_rng(self.config.seed, "netplatform"))
        self.report = NetworkedReport()
        # Event-driven pods never solve locally, so the hive's cache is
        # the only one: "collective" and "local" coincide here (both
        # mean one hive-side ConstraintCache shared across analysis
        # ticks and fix validations).
        self.solver_cache = None
        if self.config.solver_cache != "none":
            from repro.symbolic.cache import ConstraintCache
            self.solver_cache = ConstraintCache()
        self.hive = Hive(
            scenario.program,
            limits=ExecutionLimits(max_steps=self.config.max_steps),
            enable_proofs=False,
            solver_cache=self.solver_cache,
        )
        self._hive_transport = ReliableTransport(
            self.network, HIVE_ENDPOINT, receiver=self._hive_receive)
        self.pods = [_NetPod(self, index)
                     for index in range(self.config.n_pods)]
        self.clock.schedule(self.config.analysis_interval,
                            self._analysis_tick)

    # -- driving --------------------------------------------------------------

    def run(self) -> NetworkedReport:
        self.clock.run_until(self.config.duration)
        # Ship partially filled batches before the drain, then drain
        # in-flight retransmissions/acks for a clean shutdown.
        for pod in self.pods:
            pod.flush()
        self.clock.run_to_completion(max_events=2_000_000)
        if self.report.executions:
            self.report.density.record(
                self.clock.now,
                1000.0 * self.report.failures / self.report.executions)
        return self.report

    # -- hive side -------------------------------------------------------------

    def _next_decode_seq(self) -> int:
        seq = self._decode_seq
        self._decode_seq += 1
        return seq

    def _hive_receive(self, src: str, message: object) -> None:
        # The transport already opened the delivery span (parented to
        # the sender's uplink span via the wire context); everything
        # below — decode spans, hive ingest spans — nests under it.
        from repro.errors import TraceError
        kind, body = message
        if kind == "trace":
            try:
                with self._tracer.span("wire.decode",
                                       key=self._next_decode_seq(),
                                       bytes=len(body)):
                    trace = decode_trace(body)
            except TraceError:
                # Mangled on the (chaos) wire: reject, never ingest.
                self.count_chaos("frames_rejected")
                self._obs_rejected.inc()
                self._tracer.event("net.frame_rejected", src=src)
                return
            self.report.traces_delivered += 1
            self._obs_traces_delivered.inc()
            self.hive.ingest_trace(trace)
        elif kind == "batch":
            from repro.exec.batch import decode_batch
            try:
                with self._tracer.span("wire.decode",
                                       key=self._next_decode_seq(),
                                       bytes=len(body)):
                    # Zero-copy: only per-entry payloads materialize
                    # out of the received frame buffer.
                    batch = decode_batch(memoryview(body))
            except TraceError:
                # Truncated/corrupt frame: the CRC32 footer caught it.
                self.count_chaos("frames_rejected")
                self._obs_rejected.inc()
                self._tracer.event("net.frame_rejected", src=src)
                return
            for entry in batch.entries:
                self.report.traces_delivered += 1
                self._obs_traces_delivered.inc()
                if entry.is_heartbeat:
                    self.hive.ingest_heartbeat(entry.heartbeat)
                else:
                    try:
                        with self._tracer.span(
                                "wire.decode",
                                key=self._next_decode_seq(),
                                bytes=len(entry.payload)):
                            trace = decode_trace(entry.payload)
                    except TraceError:
                        self.count_chaos("frames_rejected")
                        self._obs_rejected.inc()
                        continue
                    self.hive.ingest_trace(trace)

    def count_chaos(self, event: str) -> None:
        """Account one injected-fault occurrence (no-op sans chaos)."""
        if self.chaos_events:
            self.chaos_events[event] = self.chaos_events.get(event, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        """Unified platform state: config, report, hive stats, metrics."""
        obs_snapshot = self.obs.snapshot()
        observability: Dict[str, object] = {"obs": obs_snapshot}
        if self._tracer.enabled:
            observability["tracing"] = self._tracer.summary()
        doc = {
            "config": self.config.as_dict(),
            "report": self.report.as_dict(),
            "hive": self.hive.stats.as_dict(),
            # v2 readers keep the top-level "obs" key; the
            # "observability" block is the v3 superset.
            "obs": obs_snapshot,
            "observability": observability,
        }
        if self.chaos_plan is not None:
            doc["chaos"] = {
                "profile": self.chaos_plan.profile.name,
                **self.chaos_events,
            }
        if self.solver_cache is not None:
            doc["solver_cache"] = {
                "mode": self.config.solver_cache,
                "entries": len(self.solver_cache),
                "stats": self.solver_cache.stats.as_dict(),
                "solver": self.hive.solver_stats().as_dict(),
            }
        return doc

    def _analysis_tick(self) -> None:
        self._obs_analysis_ticks.inc()
        tick = self._tick_seq
        self._tick_seq += 1
        with self._tracer.span("hive.analysis_tick", key=tick, tick=tick):
            self._analysis_tick_inner()

    def _analysis_tick_inner(self) -> None:
        updated = self.hive.maybe_fix()
        if updated is not None:
            fix = self.hive.deployed_fixes[-1]
            self.report.fixes.append(fix.description)
            if self.report.fix_deployed_at is None:
                self.report.fix_deployed_at = self.clock.now
        # (Re-)announce the current version every tick: a pod that lost
        # every retransmission of an earlier announcement would
        # otherwise stay vulnerable forever. Pods ignore stale or
        # duplicate versions, so re-announcement is idempotent.
        current = self.hive.program
        if current.version > self.scenario.program.version:
            payload = encode_program(current)
            for pod in self.pods:
                if pod.pod.version < current.version:
                    self.report.wire_bytes += (
                        MESSAGE_OVERHEAD_BYTES + len(payload))
                    self._hive_transport.send(
                        pod.pod.pod_id,
                        ("update", (current.version, payload)))
        if self.clock.now < self.config.duration:
            self.clock.schedule(self.config.analysis_interval,
                                self._analysis_tick)

    def on_pod_updated(self) -> None:
        target = self.hive.program.version
        if all(p.pod.version == target for p in self.pods):
            if self.report.all_pods_current_at is None:
                self.report.all_pods_current_at = self.clock.now
