"""Command-line interface: ``python -m repro <command>``.

The common "kick the tires" flows:

* ``run`` — the closed loop on a canned scenario, with the round table
  (``--json`` emits the full config/report/obs snapshot instead);
* ``serve`` — the continuous-service hive: a tick-driven control plane
  with autoscaled pod fleets streaming traces through the ingest pump
  (``--json`` emits the deterministic service snapshot); the health
  plane is on by default — ``--slo NAME=TARGET`` retargets objectives
  and the exit code gates on SLOs plus ingest lag;
* ``health`` — render SLOs, alert states, and incident timelines from
  a saved snapshot; the exit code is the SLO gate;
* ``stats`` — same loop, but the output is the ``repro.obs`` registry
  snapshot: where the wall-clock went, trace-ingest counts, latency
  percentiles;
* ``trace`` — same loop with causal span tracing enabled; exports the
  span tree as Chrome trace-event JSON (Perfetto), span JSONL, or
  Prometheus text (``run --trace PATH`` is the one-flag shortcut);
* ``portfolio`` — the 3-solver SAT portfolio on a small instance mix;
* ``explore`` — cooperative symbolic exploration of a corpus program.

Flags shared by every execution-shaped command (``--backend``,
``--workers``, ``--batch-traces``, ``--solver-cache``, ``--chaos``)
are defined **once**, in :func:`common_exec_flags`, and inherited via
argparse parent parsers — per-command defaults are applied with
``set_defaults`` so the definitions never fork.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.metrics.report import render_round_table, render_table

__all__ = ["main", "build_parser", "common_exec_flags",
           "common_loop_flags"]

SCENARIOS = ["crash", "deadlock", "shortread", "race"]


def common_exec_flags() -> argparse.ArgumentParser:
    """The execution-substrate flags every loop command inherits.

    One definition, many subcommands: ``parents=[common_exec_flags()]``
    gives a command ``--backend/--workers/--batch-traces/--solver-cache/
    --chaos`` with uniform help text and choices. Override a default for
    one command with ``set_defaults`` (parser-level defaults beat
    argument-level ones), never by redefining the flag.
    """
    from repro.chaos import profile_names
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--backend", default="auto",
                        choices=["auto", "serial", "thread", "process"],
                        help="execution backend (auto = $REPRO_BACKEND"
                             " or serial); reports are bit-identical"
                             " across backends for a fixed seed")
    parent.add_argument("--workers", type=int, default=0,
                        help="worker shards for thread/process backends"
                             " (0 = auto: one worker per core,"
                             " os.cpu_count(), capped at the pod"
                             " count; same rule on run/chaos/serve)")
    parent.add_argument("--batch-traces", type=int, default=0,
                        help="max traces per shard batch flush (0 = one"
                             " flush per round)")
    parent.add_argument("--dispatch-rounds", type=int, default=1,
                        help="ship up to K planned rounds per backend"
                             " transaction (process backend: one pipe"
                             " round-trip per window); applies only"
                             " when fixing/guidance/collective-cache/"
                             "chaos/invariants are all off — otherwise"
                             " rounds dispatch one at a time. Reports"
                             " stay bit-identical either way")
    parent.add_argument("--solver-cache", default="none",
                        choices=["none", "local", "collective"],
                        help="constraint recycling: local = per-engine"
                             " reuse only, collective = shard deltas"
                             " merge into the hive cache and"
                             " redistribute each round (see"
                             " docs/SOLVING.md)")
    parent.add_argument("--chaos", default="none",
                        choices=profile_names(),
                        help="fault profile to inject (see"
                             " docs/CHAOS.md)")
    return parent


def common_loop_flags() -> argparse.ArgumentParser:
    """The closed-loop shape flags (scenario/rounds/executions/seed)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--scenario", default="crash", choices=SCENARIOS)
    parent.add_argument("--rounds", type=int, default=15)
    parent.add_argument("--executions", type=int, default=40)
    parent.add_argument("--seed", type=int, default=2)
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SoftBorg: collective information recycling"
                    " (HotDep'11 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    # Each subparser gets a *fresh* parent instance: argparse adds
    # parent actions by reference, and ``set_defaults`` mutates the
    # action object — a shared instance would leak one command's
    # defaults into every other.
    run = sub.add_parser(
        "run", parents=[common_loop_flags(), common_exec_flags()],
        help="run the closed loop on a scenario")
    run.add_argument("--guidance", action="store_true")
    run.add_argument("--no-fixing", action="store_true")
    run.add_argument("--check-invariants", action="store_true",
                     help="run the platform-wide invariant checks after"
                          " every round; exit non-zero on violation")
    run.add_argument("--json", action="store_true",
                     help="emit the unified config/report/obs snapshot"
                          " as JSON instead of tables (schema v3)")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="record causal spans for the run and write a"
                          " Chrome trace-event file (load in Perfetto /"
                          " chrome://tracing) to PATH")
    run.add_argument("--health", action="store_true",
                     help="enable the round-aligned health plane (SLOs,"
                          " alerts, incidents; adds the snapshot's"
                          " additive health block — see"
                          " docs/OBSERVABILITY.md)")

    serve = sub.add_parser(
        "serve", parents=[common_exec_flags()],
        help="run the hive as a continuous service: tick-driven"
             " control plane, autoscaled pod fleet, streaming ingest"
             " (see docs/SERVICE.md)")
    serve.add_argument("--scenario", default="crash", choices=SCENARIOS)
    serve.add_argument("--ticks", type=int, default=90,
                       help="virtual-clock ticks to run")
    serve.add_argument("--users", type=int, default=0,
                       help="population size (lazy Zipf; scales to"
                            " millions); 0 = the scenario's default"
                            " population")
    serve.add_argument("--seed", type=int, default=5)
    serve.add_argument("--balance", default="round-robin",
                       choices=["round-robin", "least-backlog",
                                "consistent-hash"],
                       help="run-to-pod load-balancing policy")
    serve.add_argument("--json", action="store_true",
                       help="emit the deterministic service snapshot"
                            " as JSON (byte-identical across backends"
                            " for a fixed seed)")
    serve.add_argument("--snapshot-out", metavar="PATH", default=None,
                       help="also write the service snapshot JSON to"
                            " PATH")
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="record causal spans (incl. serve.scale_*)"
                            " and write a Chrome trace-event file")
    serve.add_argument("--slo", action="append", default=[],
                       metavar="NAME=TARGET",
                       help="override an SLO objective (repeatable),"
                            " e.g. --slo ingest-lag=2.0 --slo"
                            " family-detection=0.5; unknown names are"
                            " an error (see docs/OBSERVABILITY.md)")
    serve.add_argument("--no-health", dest="health",
                       action="store_false",
                       help="disable the health plane (no SLO"
                            " evaluation, no health block, exit code"
                            " gates on ingest lag only)")

    stats = sub.add_parser(
        "stats", parents=[common_loop_flags(), common_exec_flags()],
        help="run the closed loop and print the repro.obs"
             " metrics snapshot (wall-clock split, ingest"
             " counts, latency percentiles)")
    stats.set_defaults(rounds=10)
    stats.add_argument("--guidance", action="store_true")
    stats.add_argument("--portfolio", type=int, default=0, metavar="N",
                       help="also run the 3-solver SAT portfolio on N"
                            " instances per family and include its"
                            " report")
    stats.add_argument("--json", action="store_true",
                       help="emit the registry snapshot as JSON")

    chaos = sub.add_parser(
        "chaos", parents=[common_loop_flags(), common_exec_flags()],
        help="run the closed loop under a named fault profile"
             " and report survived/degraded/failed per round")
    # `chaos` injects by default; `--profile` stays as the historical
    # spelling of the shared `--chaos` flag (same dest, same choices).
    chaos.set_defaults(rounds=8, seed=7, chaos="lossy-workers")
    from repro.chaos import profile_names
    chaos.add_argument("--profile", dest="chaos",
                       choices=profile_names(),
                       default=argparse.SUPPRESS,
                       help="alias for --chaos")
    chaos.add_argument("--json", action="store_true",
                       help="emit the chaos summary + invariant report"
                            " as JSON")

    from repro.obs.export import TRACE_FORMATS
    trace = sub.add_parser(
        "trace", parents=[common_loop_flags(), common_exec_flags()],
        help="run the closed loop with causal span tracing on"
             " and export the trace (Chrome trace-event JSON,"
             " span JSONL, or Prometheus text)")
    trace.set_defaults(rounds=8)
    trace.add_argument("--guidance", action="store_true")
    trace.add_argument("--out", required=True, metavar="PATH",
                       help="file to write the exported trace to")
    trace.add_argument("--format", default="chrome",
                       choices=list(TRACE_FORMATS),
                       help="chrome = trace-event JSON (Perfetto),"
                            " jsonl = one span per line,"
                            " prom = Prometheus text exposition of the"
                            " metrics registry")

    portfolio = sub.add_parser(
        "portfolio", help="run the 3-solver SAT portfolio (E1, small)")
    portfolio.add_argument("--instances", type=int, default=2,
                           help="instances per family")
    portfolio.add_argument("--budget", type=int, default=400_000)

    explore = sub.add_parser(
        "explore", parents=[common_exec_flags()],
        help="cooperative symbolic exploration of a corpus program")
    explore.set_defaults(workers=4)
    explore.add_argument("--mode", default="dynamic",
                         choices=["dynamic", "static"])
    explore.add_argument("--loss", type=float, default=0.0)
    explore.add_argument("--seed", type=int, default=9)

    fleet = sub.add_parser(
        "fleet", help="run the closed loop over a corpus of programs")
    fleet.add_argument("--programs", type=int, default=4)
    fleet.add_argument("--rounds", type=int, default=12)
    fleet.add_argument("--seed", type=int, default=3)

    show = sub.add_parser(
        "show", help="print a generated corpus program (pretty IR)")
    show.add_argument("--seed", type=int, default=0)
    show.add_argument("--segments", type=int, default=6)
    show.add_argument("--bug", default="crash",
                      choices=["crash", "assert", "hang", "short_read",
                               "deadlock", "race", "leak",
                               "prio_inversion", "lost_wakeup", "toctou",
                               "provenance"])

    profile = sub.add_parser(
        "profile", parents=[common_loop_flags(), common_exec_flags()],
        help="run the closed loop under cProfile and print the top-N"
             " hot functions; --out saves the raw .pstats artifact"
             " (see docs/PERFORMANCE.md). The profiler observes this"
             " process, so the serial backend gives the full picture"
             " while thread/process runs profile the coordinator side")
    profile.set_defaults(rounds=6, executions=200, backend="serial")
    profile.add_argument("--guidance", action="store_true")
    profile.add_argument("--no-fixing", action="store_true")
    profile.add_argument("--top", type=int, default=25,
                         help="rows of the hot-function table")
    profile.add_argument("--sort", default="cumulative",
                         choices=["cumulative", "tottime", "ncalls"],
                         help="pstats sort key")
    profile.add_argument("--out", metavar="PATH", default=None,
                         help="dump raw cProfile stats to PATH (load"
                              " with pstats or any flamegraph viewer"
                              " that reads .pstats)")

    health = sub.add_parser(
        "health", help="render SLOs, alerts, and incident timelines"
                       " from a snapshot file; exit code is the SLO"
                       " gate (see docs/OBSERVABILITY.md)")
    health.add_argument("snapshot", metavar="PATH",
                        help="a snapshot JSON file (repro serve"
                             " --snapshot-out, or repro run/serve"
                             " --json output saved to a file)")
    health.add_argument("--json", action="store_true",
                        help="emit the health block as JSON")

    from repro.registry.model import FAMILIES
    registry = sub.add_parser(
        "registry", parents=[common_exec_flags()],
        help="the named bug registry: list curated bugs, run their"
             " triggering tests standalone + as hive workloads, emit"
             " per-family scorecards (see docs/REGISTRY.md)")
    registry.add_argument("action", choices=["list", "run", "score"],
                          help="list = catalogue table; run = per-bug"
                               " reproduction/detection table; score ="
                               " per-family scorecard")
    registry.add_argument("--family", default="all",
                          choices=["all", *FAMILIES])
    registry.add_argument("--seed", type=int, default=0)
    registry.add_argument("--runs", type=int, default=24,
                          help="background (unguided) executions shipped"
                               " per bug alongside the triggering-test"
                               " directives")
    registry.add_argument("--pods", type=int, default=2)
    registry.add_argument("--no-validate", action="store_true",
                          help="skip pushing known patches through"
                               " RepairLab (faster; repair columns"
                               " become '-')")
    registry.add_argument("--json", action="store_true",
                          help="emit the scorecard JSON (schema"
                               " versioned; see docs/REGISTRY.md)")
    registry.add_argument("--out", metavar="PATH", default=None,
                          help="also write the scorecard JSON to PATH")
    return parser


def _scenario_factory(name: str):
    from repro.workloads.scenarios import (
        crash_scenario, deadlock_scenario, race_scenario,
        shortread_scenario,
    )
    return {
        "crash": crash_scenario,
        "deadlock": deadlock_scenario,
        "shortread": shortread_scenario,
        "race": race_scenario,
    }[name]


def _run_platform(args, fixing: bool = True, tracing: bool = False):
    """Build + run one closed loop from CLI args (run/stats share it)."""
    from repro.obs import Tracer, reset, set_tracer
    from repro.platform import PlatformConfig, SoftBorgPlatform
    # One CLI invocation = one snapshot: drop metrics accumulated by
    # any earlier in-process use of the registry, and install a fresh
    # tracer (enabled only when the caller asked for spans) before the
    # platform resolves its handle.
    reset()
    set_tracer(Tracer(enabled=tracing))
    scenario = _scenario_factory(args.scenario)(seed=args.seed)
    multithreaded = len(scenario.program.threads) > 1
    platform = SoftBorgPlatform(scenario, PlatformConfig(
        rounds=args.rounds,
        executions_per_round=args.executions,
        guidance=getattr(args, "guidance", False),
        fixing=fixing,
        enable_proofs=not multithreaded,
        seed=args.seed,
        backend=getattr(args, "backend", "auto"),
        workers=getattr(args, "workers", 0),
        batch_max_traces=getattr(args, "batch_traces", 0),
        dispatch_rounds=getattr(args, "dispatch_rounds", 1),
        chaos_profile=getattr(args, "chaos", "none"),
        check_invariants=getattr(args, "check_invariants", False),
        solver_cache=getattr(args, "solver_cache", "none"),
        health=getattr(args, "health", False),
    ))
    report = platform.run()
    return platform, report


def _write_trace(path: str, fmt: str = "chrome") -> int:
    """Export the current tracer's span log to ``path``; span count."""
    from repro.obs import get_registry, get_tracer
    from repro.obs.export import export_trace
    tracer = get_tracer()
    text = export_trace(tracer.log, fmt, registry=get_registry())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    return len(tracer.log)


def _cmd_run(args) -> int:
    platform, report = _run_platform(args, fixing=not args.no_fixing,
                                     tracing=bool(args.trace))
    violated = bool(platform.invariant_violations)
    spans = _write_trace(args.trace) if args.trace else 0
    if args.json:
        print(json.dumps(platform.snapshot(), sort_keys=True, indent=2))
        return 1 if violated else 0
    scenario = platform.scenario
    print(render_round_table(
        report, title=f"Closed loop on {scenario.program.name!r}"))
    print()
    print(f"fixes deployed : {report.fixes or 'none'}")
    print(f"open bugs      : {sorted(report.density.open_bugs) or 'none'}")
    if platform.solver_cache is not None:
        cache = platform.solver_cache
        solver = platform.hive.solver_stats()
        print(f"solver cache   : {platform.config.solver_cache},"
              f" {len(cache)} entries,"
              f" {cache.stats.hits} hits / {cache.stats.misses} misses"
              f" (hit rate {cache.stats.hit_rate():.0%},"
              f" {solver.evaluations} hive evaluations)")
    if report.proofs:
        print(f"final proof    : {report.proofs[-1][1].describe()}")
    print()
    print("hive knowledge:")
    for key, value in platform.hive.status().items():
        print(f"  {key}: {value}")
    if args.trace:
        print()
        print(f"trace          : {spans} spans -> {args.trace}"
              f" (Chrome trace-event JSON)")
    if args.check_invariants:
        print()
        if violated:
            for round_index, result in platform.invariant_violations:
                for violation in result.violations:
                    print(f"INVARIANT VIOLATION (round {round_index}):"
                          f" {violation.name}: {violation.detail}")
        else:
            print("invariants     : all checks green")
    return 1 if violated else 0


def _cmd_serve(args) -> int:
    from repro.obs import Tracer, reset, set_tracer
    from repro.obs.health import parse_slo_overrides
    from repro.serve import Service, ServiceConfig
    reset()
    set_tracer(Tracer(enabled=bool(args.trace)))
    scenario = _scenario_factory(args.scenario)(seed=args.seed)
    service = Service(scenario, ServiceConfig(
        ticks=args.ticks,
        users=args.users,
        seed=args.seed,
        balance=args.balance,
        backend=args.backend,
        workers=args.workers,
        batch_max_traces=args.batch_traces,
        chaos_profile=args.chaos,
        solver_cache=args.solver_cache,
        enable_proofs=False,
        health=args.health,
        slo_overrides=parse_slo_overrides(args.slo),
    ))
    report = service.run()
    snapshot = service.snapshot()
    spans = _write_trace(args.trace) if args.trace else 0
    if args.snapshot_out:
        with open(args.snapshot_out, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, sort_keys=True, indent=2)
            handle.write("\n")
    lag_ok = snapshot["ingest_lag"]["ok"]
    health_block = snapshot["health"]
    health_ok = health_block is None or health_block["ok"]
    exit_code = 0 if (lag_ok and health_ok) else 1
    if args.json:
        print(json.dumps(snapshot, sort_keys=True, indent=2))
        return exit_code
    pods = snapshot["autoscalers"]["pods"]
    ingest = snapshot["autoscalers"]["ingest_workers"]
    rows = [[event["tick"], event["pool"], event["direction"],
             event["from_replicas"], event["to_replicas"], event["load"]]
            for event in sorted(
                pods["events"] + ingest["events"],
                key=lambda event: (event["tick"], event["pool"]))]
    print(render_table(
        ["tick", "pool", "dir", "from", "to", "load"], rows,
        title=f"Service on {scenario.program.name!r}:"
              f" {args.ticks} ticks, seed {args.seed}"))
    print()
    print(f"executions : {report.total_executions}"
          f" ({report.total_failures} failures,"
          f" rate {report.failure_rate():.2%})")
    print(f"fleet      : {snapshot['fleet']['ready']} ready /"
          f" {snapshot['fleet']['desired']} desired"
          f" (max {snapshot['fleet']['max_pods']},"
          f" {snapshot['fleet']['restarts']} restarts)")
    print(f"scaling    : pods {pods['scale_ups']} up /"
          f" {pods['scale_downs']} down;"
          f" ingest {ingest['scale_ups']} up /"
          f" {ingest['scale_downs']} down")
    print(f"ingest lag : max {report.max_ingest_lag_ticks:.2f} ticks"
          f" (bound {service.config.max_ingest_lag_ticks:.2f},"
          f" {'OK' if lag_ok else 'EXCEEDED'})")
    print(f"pump       : {snapshot['pump']['entries_drained']} entries"
          f" ingested, {snapshot['pump']['frames_discarded']} frames"
          f" lost, {snapshot['pump']['wire_bytes']} wire bytes")
    print(f"fixes      : {report.fixes or 'none'}")
    if health_block is not None:
        fires = sum(slo["fires"] for slo in health_block["slos"])
        incidents = health_block["incidents"]
        still_open = sum(1 for incident in incidents
                         if incident["open"])
        print(f"health     : {'OK' if health_block['ok'] else 'DEGRADED'}"
              f" ({len(health_block['slos'])} SLOs, {fires} alert"
              f" fires, {len(incidents)} incidents,"
              f" {still_open} open)")
    if args.trace:
        print(f"trace      : {spans} spans -> {args.trace}")
    if args.snapshot_out:
        print(f"snapshot   : -> {args.snapshot_out}")
    return exit_code


def _cmd_chaos(args) -> int:
    platform, _report = _run_platform(args)
    chaos = platform.chaos
    if chaos is None:  # --chaos none: nothing injected, nothing to grade
        print(f"profile {args.chaos!r} injects no faults; run completed")
        return 0
    violated = bool(platform.invariant_violations)
    failed = violated or not chaos.all_survived()
    if args.json:
        doc = {
            "chaos": chaos.summary(),
            "invariants": {
                "ok": not violated,
                "violations": [
                    {"round": round_index, **result.as_dict()}
                    for round_index, result in
                    platform.invariant_violations],
            },
        }
        print(json.dumps(doc, sort_keys=True, indent=2))
        return 1 if failed else 0
    rows = []
    for stats in chaos.rounds:
        rows.append([stats.round_index, stats.faults_injected,
                     stats.worker_deaths, stats.runs_lost,
                     stats.frames_dropped + stats.frames_discarded
                     + stats.frames_abandoned,
                     stats.entries_delivered,
                     "yes" if stats.invariants_ok else "NO",
                     stats.verdict])
    print(render_table(
        ["round", "faults", "deaths", "runs lost", "frames lost",
         "delivered", "invariants", "verdict"],
        rows,
        title=f"Chaos: profile {chaos.profile.name!r} on"
              f" {platform.scenario.program.name!r}"
              f" (seed {platform.config.seed})"))
    summary = chaos.summary()
    faults = sum(stats.faults_injected for stats in chaos.rounds)
    print()
    print(f"verdicts  : {summary['verdicts']}")
    print(f"faults    : {faults} injected,"
          f" {summary['runs_lost']} runs lost,"
          f" {summary['frames_abandoned']} frames abandoned")
    print(f"fixes     : {_report.fixes or 'none'}")
    print(f"invariants: {'VIOLATED' if violated else 'all checks green'}")
    return 1 if failed else 0


def _cmd_stats(args) -> int:
    from repro.obs import get_registry, get_tracer
    platform, _report = _run_platform(args)
    registry = get_registry()
    # The uniform as_dict() contract: hive-wide SolverStats (steering,
    # validation, prover) always; cache accounting when recycling is
    # on; the E1 PortfolioReport when --portfolio N asks for it.
    solver_doc = platform.hive.solver_stats().as_dict()
    cache_doc = None
    if platform.solver_cache is not None:
        cache_doc = {
            "mode": platform.config.solver_cache,
            "entries": len(platform.solver_cache),
            **platform.solver_cache.stats.as_dict(),
        }
    portfolio_doc = None
    if args.portfolio > 0:
        portfolio_doc = _portfolio_report(args.portfolio).as_dict()
    if args.json:
        doc = registry.snapshot()
        # Mirror the run-snapshot layout: the observability block is
        # the one place v3 readers look for metrics + tracing state.
        observability = {"obs": registry.snapshot()}
        tracer = get_tracer()
        if tracer.enabled:
            observability["tracing"] = tracer.summary()
        doc["observability"] = observability
        doc["solver"] = solver_doc
        if cache_doc is not None:
            doc["solver_cache"] = cache_doc
        if portfolio_doc is not None:
            doc["portfolio"] = portfolio_doc
        print(json.dumps(doc, sort_keys=True, indent=2))
        return 0
    print(registry.render())
    print()
    print("solver:")
    for key, value in solver_doc.items():
        print(f"  {key}: {value}")
    if cache_doc is not None:
        print("solver cache:")
        for key, value in cache_doc.items():
            print(f"  {key}: {value}")
    if portfolio_doc is not None:
        print("portfolio:")
        for key, value in portfolio_doc.items():
            print(f"  {key}: {value}")
    return 0


def _portfolio_report(instances_per_family: int, budget: int = 400_000):
    """The E1 portfolio experiment (stats/portfolio commands share it)."""
    import random

    from repro.solvers.cnf import (
        graph_coloring, implication_chain, random_ksat,
    )
    from repro.solvers.dpll import DPLLSolver
    from repro.solvers.lookahead import LookaheadSolver
    from repro.solvers.portfolio import run_portfolio_experiment
    from repro.solvers.walksat import WalkSATSolver

    instances = []
    for seed in range(instances_per_family):
        instances.append(random_ksat(
            100, 420, rng=random.Random(seed), force_satisfiable=True))
        instances.append(implication_chain(
            30, 14, rng=random.Random(seed)))
        instances.append(graph_coloring(
            10, 0.5, 3, rng=random.Random(seed + 7)))
    return run_portfolio_experiment(
        [DPLLSolver("jw"), WalkSATSolver(seed=2), LookaheadSolver()],
        instances, budget=budget)


def _cmd_trace(args) -> int:
    platform, _report = _run_platform(args, tracing=True)
    spans = _write_trace(args.out, args.format)
    violated = bool(platform.invariant_violations)
    what = ("metrics registry" if args.format == "prom"
            else f"{spans} spans")
    print(f"trace: {what} -> {args.out} ({args.format})")
    return 1 if violated else 0


def _cmd_portfolio(args) -> int:
    report = _portfolio_report(args.instances, budget=args.budget)
    rows = []
    for name in ("dpll-jw", "walksat", "lookahead"):
        rows.append([name, report.total_single_time(name),
                     float(report.speedup_vs(name))])
    rows.append(["portfolio(3)", report.total_portfolio_time, 1.0])
    print(render_table(
        ["as single solver", "total cost", "portfolio speedup"],
        rows,
        title=f"Portfolio over {len(report.outcomes)} instances"))
    print(f"winner split: {report.wins_by_solver()}")
    return 0


def _cmd_explore(args) -> int:
    from repro.hive.cooperative import (
        CooperativeConfig, explore_cooperatively,
    )
    from repro.progmodel.bugs import BugKind
    from repro.progmodel.corpus import CorpusConfig, generate_program

    seeded = generate_program(
        "cli_explore", CorpusConfig(seed=args.seed, n_segments=8),
        (BugKind.CRASH,))
    result = explore_cooperatively(seeded.program, CooperativeConfig(
        n_workers=args.workers, mode=args.mode, loss_rate=args.loss,
        task_timeout=3.0, seed=args.seed,
        solver_cache=args.solver_cache))
    rows = [["paths found", result.path_count],
            ["completed", "yes" if result.completed else "no"],
            ["virtual time (s)", float(result.virtual_time)],
            ["tasks processed", result.tasks_processed],
            ["tasks reassigned", result.tasks_reassigned],
            ["messages lost", result.messages_lost]]
    if result.cache_stats is not None:
        rows.append(["solver evaluations", result.solver_evaluations])
        rows.append(["cache hit rate",
                     f"{result.cache_stats['hit_rate']:.0%}"])
        rows.append(["cache facts merged", result.cache_stats["merged"]])
    print(render_table(
        ["metric", "value"], rows,
        title=f"Cooperative exploration: {args.mode} x{args.workers},"
              f" loss {args.loss:.0%}"))
    return 0


def _cmd_fleet(args) -> int:
    from repro.fleet import Fleet
    from repro.platform import PlatformConfig
    from repro.workloads.scenarios import mixed_corpus_scenario

    scenarios = mixed_corpus_scenario(
        n_programs=args.programs, n_users=40, seed=args.seed)
    fleet = Fleet(scenarios, PlatformConfig(
        rounds=args.rounds, executions_per_round=40, guidance=True,
        enable_proofs=False, seed=args.seed))
    report = fleet.run()
    rows = []
    for program in report.programs:
        if program.exterminated:
            verdict = "exterminated"
        elif program.preempted:
            verdict = "preempted"
        elif program.bugs_seen == 0:
            verdict = "never manifested"
        else:
            verdict = "OPEN"
        rows.append([program.program_name,
                     program.report.total_failures,
                     len(program.report.fixes), verdict])
    print(render_table(
        ["program", "user failures", "fixes", "verdict"],
        rows, title=f"Fleet of {len(report.programs)} programs"))
    print(f"residual fails/1k: {report.residual_failure_rate():.2f}")
    return 0


def _cmd_show(args) -> int:
    from repro.progmodel.bugs import BugKind
    from repro.progmodel.corpus import CorpusConfig, generate_program
    from repro.progmodel.pretty import format_program

    seeded = generate_program(
        "shown", CorpusConfig(seed=args.seed, n_segments=args.segments),
        (BugKind(args.bug),))
    print(format_program(seeded.program))
    print()
    for bug in seeded.bugs:
        print(f"# seeded: {bug.message} at {bug.site_function}:"
              f"{bug.site_block} trigger={bug.trigger}")
    return 0


def _cmd_health(args) -> int:
    """Render a snapshot's health block; exit code = the SLO gate."""
    with open(args.snapshot, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    block = doc.get("health")
    if block is None:
        print("snapshot has no health block (health plane disabled;"
              " rerun without --no-health / with --health)",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(block, sort_keys=True, indent=2))
        return 0 if block["ok"] else 1
    rows = []
    for slo in block["slos"]:
        worst = slo.get("worst")
        rows.append([
            slo["name"], slo["sli"],
            f"{slo['objective']:g}", slo["direction"],
            "OK" if slo["ok"] else "FIRING", slo["fires"],
            (f"{worst['value']:.3g} @ {worst['tick']}"
             if worst else "-")])
    print(render_table(
        ["slo", "sli", "objective", "dir", "state", "fires", "worst"],
        rows,
        title=f"Health: {'OK' if block['ok'] else 'DEGRADED'}"
              f" (schema v{block['health_schema_version']},"
              f" {block['ticks_observed']} ticks observed)"))
    incidents = block["incidents"]
    if incidents:
        print()
        rows = []
        for incident in incidents:
            evidence = incident.get("evidence", {})
            rows.append([
                incident["incident_id"], incident["slo"],
                incident["severity"], incident["opened_tick"],
                ("open" if incident["open"]
                 else incident["closed_tick"]),
                len(evidence.get("chaos", [])),
                len(evidence.get("scaling", []))])
        print(render_table(
            ["incident", "slo", "sev", "opened", "closed",
             "chaos ev", "scale ev"],
            rows, title="Incident timeline"))
    return 0 if block["ok"] else 1


def _cmd_registry(args) -> int:
    from repro.exec.backends import resolve_backend_name
    from repro.metrics.scorecard import build_scorecard
    from repro.registry import (
        RegistryRunConfig, build_registry, run_registry,
    )

    backend = resolve_backend_name(args.backend)
    registry = build_registry(seed=args.seed)
    bugs = registry.bugs(args.family)

    if args.action == "list":
        rows = [[bug.ref, bug.family, bug.spec.kind.value,
                 len(bug.trigger_tests), len(bug.passing_tests),
                 bug.patch.fix_id if bug.patch else "-",
                 ",".join(bug.modified_functions)]
                for bug in bugs]
        print(render_table(
            ["ref", "family", "kind", "trig", "pass", "known patch",
             "modifies"],
            rows, title=f"Bug registry (seed {args.seed},"
                        f" {len(bugs)} bugs)"))
        return 0

    config = RegistryRunConfig(
        seed=args.seed, backend=backend, workers=args.workers,
        family=args.family, background_runs=args.runs, pods=args.pods,
        validate_patches=not args.no_validate)
    results = run_registry(registry, config)
    card = build_scorecard(results, seed=args.seed, backend=backend)
    healthy = all(
        result.detected and result.reproduction_rate == 1.0
        and result.invariants_ok
        and result.repair_valid is not False
        for result in results)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(card.to_json())
            handle.write("\n")

    if args.action == "run":
        if args.json:
            print(card.to_json())
        else:
            rows = [[r.ref, r.trigger_tests,
                     f"{r.trigger_reproduced}/{r.trigger_tests}",
                     "yes" if r.detected else "NO",
                     r.localization_rank or "-",
                     ("-" if r.repair_valid is None
                      else "yes" if r.repair_valid else "NO"),
                     "yes" if r.invariants_ok else "NO"]
                    for r in results]
            print(render_table(
                ["ref", "trig", "reproduced", "detected", "loc-rank",
                 "repair", "inv-ok"],
                rows, title=f"Registry run: family {args.family!r},"
                            f" backend {backend}, seed {args.seed}"))
            if args.out:
                print(f"scorecard -> {args.out}")
        return 0 if healthy else 1

    # score
    if args.json:
        print(card.to_json())
    else:
        print(card.render())
        if args.out:
            print(f"scorecard -> {args.out}")
    return 0 if healthy else 1


def _cmd_profile(args) -> int:
    """One closed-loop run under cProfile: where do the cycles go?

    The table answers "what should the next optimization touch"; the
    ``--out`` artifact keeps the full call graph for offline digging.
    The run itself is an ordinary :func:`_run_platform` loop, so the
    numbers profile exactly what ``repro run`` executes.
    """
    import cProfile
    import io
    import pstats
    import time

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    platform, report = _run_platform(args, fixing=not args.no_fixing)
    profiler.disable()
    wall = max(time.perf_counter() - started, 1e-9)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    print(f"profiled {args.rounds} rounds x {args.executions}"
          f" executions on {platform.backend.name}"
          f" ({args.scenario!r}, seed {args.seed}): {wall:.2f}s wall,"
          f" {args.rounds / wall:.2f} rounds/sec,"
          f" failure rate {report.failure_rate():.3f}")
    print(stream.getvalue().rstrip())
    if args.out:
        stats.dump_stats(args.out)
        print(f"pstats -> {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "serve": _cmd_serve,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "chaos": _cmd_chaos,
        "portfolio": _cmd_portfolio,
        "explore": _cmd_explore,
        "fleet": _cmd_fleet,
        "show": _cmd_show,
        "profile": _cmd_profile,
        "health": _cmd_health,
        "registry": _cmd_registry,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
