"""Hive-side misbehaviour analysis.

Consumes aggregated by-products (traces, replayed executions, the
execution tree) and produces actionable diagnoses: deadlock cycles
(:mod:`deadlock`), crash buckets in the WER style (:mod:`crashes`),
statistical bug isolation in the CBI style (:mod:`cbi`), tree-based
localization (:mod:`localize`), and hang inference (:mod:`hangs`).
The crash-bucketing and CBI modules double as the report-only baselines
the paper positions SoftBorg against (Sec. 5).
"""

from repro.analysis.deadlock import (
    DeadlockAnalyzer,
    DeadlockDiagnosis,
    LockOrderGraph,
)
from repro.analysis.crashes import CrashBucket, CrashBucketer
from repro.analysis.cbi import CbiAnalyzer, PredicateScore
from repro.analysis.localize import LocalizationScore, localize_from_tree
from repro.analysis.hangs import HangReport, infer_hangs
from repro.analysis.invariants import Invariant, InvariantMiner
from repro.analysis.races import RaceAnalyzer, RaceReport

__all__ = [
    "LockOrderGraph", "DeadlockAnalyzer", "DeadlockDiagnosis",
    "CrashBucketer", "CrashBucket",
    "CbiAnalyzer", "PredicateScore",
    "localize_from_tree", "LocalizationScore",
    "infer_hangs", "HangReport",
    "RaceAnalyzer", "RaceReport",
    "InvariantMiner", "Invariant",
]
