"""Hang inference from outcomes and user feedback.

A pod cannot observe "this program will never terminate"; it sees a
step budget exhausted (HANG outcome) or the user force-killing the
process (Sec. 3.1's indirect feedback). This module groups such
evidence by the location the program was spinning at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.progmodel.interpreter import Outcome
from repro.tracing.outcome import UserFeedback
from repro.tracing.trace import Trace

__all__ = ["HangReport", "infer_hangs"]

Site = Tuple[int, str, str]


@dataclass
class HangReport:
    """Evidence that the program hangs at a particular location."""

    site: Optional[Site]
    observed_hangs: int = 0
    forced_kills: int = 0
    sluggish_reports: int = 0

    @property
    def confidence(self) -> float:
        """Crude evidence weight: explicit hangs and kills count fully,
        sluggishness counts half."""
        return (self.observed_hangs + self.forced_kills
                + 0.5 * self.sluggish_reports)


def infer_hangs(traces: Sequence[Trace],
                feedback: Optional[Sequence[UserFeedback]] = None,
                ) -> List[HangReport]:
    """Group hang evidence by failure site, strongest evidence first.

    ``feedback`` aligns index-wise with ``traces`` when provided; a
    FORCED_KILL on a non-HANG trace still contributes (the user knew
    something the step budget did not).
    """
    reports: Dict[Optional[Site], HangReport] = {}
    for index, trace in enumerate(traces):
        signal = feedback[index] if feedback is not None else UserFeedback.NONE
        is_hang = trace.outcome is Outcome.HANG
        if not is_hang and signal is UserFeedback.NONE:
            continue
        site = trace.failure_site if is_hang else None
        report = reports.setdefault(site, HangReport(site=site))
        if is_hang:
            report.observed_hangs += 1
        if signal is UserFeedback.FORCED_KILL:
            report.forced_kills += 1
        elif signal is UserFeedback.SLUGGISH:
            report.sluggish_reports += 1
    return sorted(reports.values(), key=lambda r: -r.confidence)
