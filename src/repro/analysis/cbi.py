"""Cooperative Bug Isolation scoring (Liblit et al., paper ref [18]).

Predicates are branch observations ``(site, direction)``. For each
predicate P over many sampled runs:

* ``failure(P)``  = Pr(run fails | P observed true in the run),
* ``context(P)``  = Pr(run fails | P's *site* observed at all),
* ``increase(P)`` = failure(P) - context(P) — how much more predictive
  the specific direction is than merely reaching the site, and
* ``importance(P)`` — harmonic mean of increase(P) and the normalised
  log of the failing-run support, Liblit's balanced ranking metric.

CBI localizes which predicate predicts failure from *sparse* samples;
it does not synthesize a fix — it is both a SoftBorg ingredient (works
on non-replayable sampled traces) and the second baseline of E12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.tracing.trace import Observation, Trace

__all__ = ["PredicateScore", "CbiAnalyzer"]

Site = Tuple[int, str, str]
Predicate = Tuple[Site, bool]


@dataclass
class PredicateScore:
    """CBI statistics for one predicate."""

    predicate: Predicate
    observed_true_fail: int      # F(P)
    observed_true_success: int   # S(P)
    site_fail: int               # F(P observed)
    site_success: int            # S(P observed)

    @property
    def failure(self) -> float:
        total = self.observed_true_fail + self.observed_true_success
        return self.observed_true_fail / total if total else 0.0

    @property
    def context(self) -> float:
        total = self.site_fail + self.site_success
        return self.site_fail / total if total else 0.0

    @property
    def increase(self) -> float:
        return self.failure - self.context

    @property
    def importance(self) -> float:
        """Harmonic mean of Increase and log-support (Liblit 2005)."""
        if self.increase <= 0.0 or self.observed_true_fail == 0:
            return 0.0
        support = math.log(1 + self.observed_true_fail)
        return 2.0 / (1.0 / self.increase + 1.0 / support)


class CbiAnalyzer:
    """Accumulates (observations, outcome) pairs; ranks predicates."""

    def __init__(self):
        # predicate -> [true_fail, true_success]
        self._pred: Dict[Predicate, List[int]] = {}
        # site -> [fail, success] (site observed at all)
        self._site: Dict[Site, List[int]] = {}
        self.runs = 0
        self.failing_runs = 0

    def add_run(self, observations: Iterable[Observation],
                failed: bool) -> None:
        """Fold in one run's sampled observations and its outcome."""
        self.runs += 1
        if failed:
            self.failing_runs += 1
        slot = 0 if failed else 1
        sites_seen = set()
        predicates_seen = set()
        for obs in observations:
            predicates_seen.add((obs.site, obs.taken))
            sites_seen.add(obs.site)
        for predicate in predicates_seen:
            counts = self._pred.setdefault(predicate, [0, 0])
            counts[slot] += 1
        for site in sites_seen:
            counts = self._site.setdefault(site, [0, 0])
            counts[slot] += 1

    def add_trace(self, trace: Trace) -> None:
        """Convenience: fold in a sampled-capture trace."""
        self.add_run(trace.observations, trace.outcome.is_failure)

    def scores(self) -> List[PredicateScore]:
        result = []
        for predicate, (tf, ts) in self._pred.items():
            site = predicate[0]
            sf, ss = self._site[site]
            result.append(PredicateScore(
                predicate=predicate,
                observed_true_fail=tf,
                observed_true_success=ts,
                site_fail=sf,
                site_success=ss,
            ))
        return result

    def ranking(self) -> List[PredicateScore]:
        """Predicates ranked most-important first (ties: more failing
        support, then stable by predicate)."""
        return sorted(
            self.scores(),
            key=lambda s: (-s.importance, -s.observed_true_fail,
                           s.predicate))

    def rank_of(self, predicate: Predicate) -> Optional[int]:
        """1-based rank of a predicate in the ranking; None if absent."""
        for index, score in enumerate(self.ranking()):
            if score.predicate == predicate:
                return index + 1
        return None
