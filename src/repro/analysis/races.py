"""Data-race detection via the lockset algorithm (Eraser-style).

The paper's trace by-products include lock acquisitions and shared
state; interleavings "weave different executions out of otherwise
identical thread-level execution paths" and hide concurrency bugs.
This detector reconstructs shared-variable accesses from replayed
executions and maintains, per shared variable, the *candidate lockset*
— the intersection of lock sets held across all accesses. A variable
whose candidate set goes empty while being written by multiple threads
is racy: no single lock consistently protects it.

A race is a *pattern*, like a lock-order cycle: it can be diagnosed
from executions that exhibited no failure, and it is fixed by
synthesizing consistent locking
(:class:`repro.fixes.lockify.LockifyFix`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.progmodel.interpreter import ExecutionResult, GlobalEvent

__all__ = ["RaceReport", "RaceAnalyzer"]

AccessSite = Tuple[str, str]  # (function, block)


@dataclass
class RaceReport:
    """One racy shared variable and the evidence."""

    variable: str
    writer_threads: Tuple[int, ...]
    access_sites: Tuple[AccessSite, ...]
    unprotected_accesses: int

    @property
    def is_write_write(self) -> bool:
        return len(self.writer_threads) >= 2


class _VariableState:
    __slots__ = ("candidate", "threads", "writers", "sites", "accesses",
                 "virgin")

    def __init__(self):
        self.candidate: Optional[Set[str]] = None  # None = not yet accessed
        self.threads: Set[int] = set()
        self.writers: Set[int] = set()
        self.sites: Set[AccessSite] = set()
        self.accesses = 0
        self.virgin = True


class RaceAnalyzer:
    """Accumulates executions; reports lockset violations.

    Accesses before a second thread has touched the variable are
    exempt (the Eraser initialization-phase refinement): most shared
    data is initialized single-threaded without locks, and flagging
    that would drown the signal.
    """

    def __init__(self, ignore_prefix: str = "__"):
        # Synthesized infrastructure globals (recovery flags, gates)
        # are not user data; skip them.
        self._ignore_prefix = ignore_prefix
        self._variables: Dict[str, _VariableState] = {}
        self.executions_analyzed = 0

    def add_execution(self, result: ExecutionResult) -> None:
        self.executions_analyzed += 1
        shared_seen: Dict[str, Set[int]] = {}
        for event in result.global_events:
            if event.name.startswith(self._ignore_prefix):
                continue
            state = self._variables.setdefault(event.name, _VariableState())
            state.accesses += 1
            state.threads.add(event.thread)
            state.sites.add((event.function, event.block))
            if event.op == "write":
                state.writers.add(event.thread)
            shared_seen.setdefault(event.name, set()).add(event.thread)
            # Initialization phase: only refine the lockset once the
            # variable is demonstrably shared within this execution.
            if len(shared_seen[event.name]) < 2 and state.virgin:
                continue
            state.virgin = False
            held = set(event.held_locks)
            if state.candidate is None:
                state.candidate = held
            else:
                state.candidate &= held

    def reports(self) -> List[RaceReport]:
        """Racy variables, most-written first."""
        found = []
        for name, state in sorted(self._variables.items()):
            if len(state.threads) < 2 or not state.writers:
                continue
            if state.candidate is None or state.candidate:
                continue  # some lock consistently protects it
            found.append(RaceReport(
                variable=name,
                writer_threads=tuple(sorted(state.writers)),
                access_sites=tuple(sorted(state.sites)),
                unprotected_accesses=state.accesses,
            ))
        found.sort(key=lambda r: (-len(r.writer_threads),
                                  -r.unprotected_accesses, r.variable))
        return found
