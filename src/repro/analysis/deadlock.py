"""Deadlock detection from lock-order by-products.

The hive replays traces into full executions, extracts lock events, and
maintains a lock-order graph: an edge A -> B means some thread acquired
B while holding A. A cycle in this graph is a deadlock *pattern* (the
condition the deadlock-immunity fix neutralises); an actual DEADLOCK
trace additionally pins down the participating acquisition sites.
This is the analysis behind the paper's deadlock example (Sec. 3) and
its reference [16] (Jula et al., "Deadlock Immunity").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.progmodel.interpreter import ExecutionResult, LockEvent, Outcome

__all__ = ["LockOrderGraph", "DeadlockAnalyzer", "DeadlockDiagnosis"]

AcquisitionSite = Tuple[str, str]  # (function, block)


@dataclass
class DeadlockDiagnosis:
    """A deadlock pattern: the lock cycle and where it is acquired."""

    cycle: Tuple[str, ...]                     # locks, in cycle order
    sites: Dict[str, List[AcquisitionSite]]    # lock -> acquiring sites
    observed_deadlocks: int = 0                # traces that actually hung

    @property
    def locks(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.cycle)))


class LockOrderGraph:
    """Directed graph over lock names with acquisition-site labels."""

    def __init__(self):
        self._edges: Dict[str, Set[str]] = {}
        self._edge_sites: Dict[Tuple[str, str], Set[AcquisitionSite]] = {}
        self._acquire_sites: Dict[str, Set[AcquisitionSite]] = {}

    def add_execution(self, lock_events: Sequence[LockEvent]) -> None:
        """Fold one execution's lock events into the graph.

        "request" events count like acquisitions for ordering purposes:
        a thread blocked requesting B while holding A has established
        the A->B order even though it never got B.
        """
        held: Dict[int, List[str]] = {}
        for event in lock_events:
            stack = held.setdefault(event.thread, [])
            if event.op in ("acquire", "request"):
                site = (event.function, event.block)
                self._acquire_sites.setdefault(event.lock_name, set()).add(site)
                for lower in stack:
                    if lower != event.lock_name:
                        self._edges.setdefault(lower, set()).add(event.lock_name)
                        self._edge_sites.setdefault(
                            (lower, event.lock_name), set()).add(site)
                if event.op == "acquire":
                    stack.append(event.lock_name)
            elif event.op == "release":
                if event.lock_name in stack:
                    stack.remove(event.lock_name)

    def edges(self) -> List[Tuple[str, str]]:
        return sorted((a, b) for a, targets in self._edges.items()
                      for b in targets)

    def cycles(self) -> List[Tuple[str, ...]]:
        """All elementary cycles, canonicalised (smallest lock first).

        Lock graphs are tiny (programs hold few locks), so a simple
        DFS enumeration is ample.
        """
        found: Set[Tuple[str, ...]] = set()
        nodes = sorted(self._edges)

        def dfs(start: str, node: str, path: List[str]) -> None:
            for nxt in sorted(self._edges.get(node, ())):
                if nxt == start and len(path) > 1:
                    found.add(_canonical(tuple(path)))
                elif nxt not in path and nxt > start:
                    # Only extend with nodes > start: each cycle is then
                    # discovered exactly once, rooted at its minimum.
                    dfs(start, nxt, path + [nxt])

        for node in nodes:
            dfs(node, node, [node])
        return sorted(found)

    def sites_for(self, lock: str) -> List[AcquisitionSite]:
        return sorted(self._acquire_sites.get(lock, ()))


def _canonical(cycle: Tuple[str, ...]) -> Tuple[str, ...]:
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


class DeadlockAnalyzer:
    """Accumulates executions; reports deadlock patterns."""

    def __init__(self):
        self.graph = LockOrderGraph()
        self._deadlock_count = 0

    def add_execution(self, result: ExecutionResult) -> None:
        self.graph.add_execution(result.lock_events)
        if result.outcome is Outcome.DEADLOCK:
            self._deadlock_count += 1

    def diagnoses(self) -> List[DeadlockDiagnosis]:
        reports = []
        for cycle in self.graph.cycles():
            sites = {lock: self.graph.sites_for(lock) for lock in cycle}
            reports.append(DeadlockDiagnosis(
                cycle=cycle, sites=sites,
                observed_deadlocks=self._deadlock_count))
        return reports

    @property
    def observed_deadlocks(self) -> int:
        return self._deadlock_count
