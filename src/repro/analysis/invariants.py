"""Dynamic invariant mining (Daikon-lite).

Paper Sec. 3.3: the hive "continuously reasons about the program and
attempts to prove useful properties about P". Outcome properties
(never-crashes) are built in; *data* properties have to come from
somewhere — this module mines them from execution by-products, in the
Daikon style: propose a grammar of candidate invariants over observed
quantities, keep the ones no execution violates, and report each with
its supporting-sample count so the prover can weigh the evidence.

Observed quantities are the ones the hive reconstructs from replay:
final global values and per-thread return values. Candidate forms:

* ``var == c``            (constant)
* ``lo <= var <= hi``     (range, tightest observed)
* ``var_a == var_b``      (equality between variables)
* ``var >= 0`` / ``var <= 0``  (sign)

Mined invariants are *candidate* facts: true of everything seen, not
proved. Feeding one to the cumulative prover (as an assertion-shaped
property) is what upgrades it from observation to theorem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.progmodel.interpreter import ExecutionResult

__all__ = ["Invariant", "InvariantMiner"]


@dataclass(frozen=True)
class Invariant:
    """One mined candidate invariant."""

    kind: str          # "constant" | "range" | "equal" | "sign"
    subject: str       # variable name (or "a==b" pair text for equal)
    description: str
    support: int       # executions consistent with (and informing) it

    def __str__(self) -> str:
        return f"{self.description}  [support={self.support}]"


class _VarStats:
    __slots__ = ("lo", "hi", "samples", "none_seen")

    def __init__(self):
        self.lo: Optional[int] = None
        self.hi: Optional[int] = None
        self.samples = 0
        self.none_seen = False

    def record(self, value: Optional[int]) -> None:
        self.samples += 1
        if value is None:
            self.none_seen = True
            return
        self.lo = value if self.lo is None else min(self.lo, value)
        self.hi = value if self.hi is None else max(self.hi, value)


class InvariantMiner:
    """Accumulates executions; reports surviving candidate invariants.

    ``min_support`` suppresses invariants with too few samples (a
    constant observed once is noise, not a fact). Variables whose name
    starts with ``ignore_prefix`` (synthesized infrastructure globals)
    are skipped.
    """

    def __init__(self, min_support: int = 5, ignore_prefix: str = "__"):
        self._min_support = min_support
        self._ignore_prefix = ignore_prefix
        self._globals: Dict[str, _VarStats] = {}
        self._returns: Dict[int, _VarStats] = {}
        self._equal_pairs: Optional[Dict[Tuple[str, str], int]] = None
        self.executions = 0

    # -- ingestion -----------------------------------------------------------

    def add_execution(self, result: ExecutionResult) -> None:
        self.executions += 1
        snapshot = {name: value
                    for name, value in result.final_globals.items()
                    if not name.startswith(self._ignore_prefix)}
        for name, value in snapshot.items():
            self._globals.setdefault(name, _VarStats()).record(value)
        for tid, value in result.return_values.items():
            self._returns.setdefault(tid, _VarStats()).record(value)
        self._update_equalities(snapshot)

    def _update_equalities(self, snapshot: Dict[str, Optional[int]]) -> None:
        names = sorted(n for n, v in snapshot.items() if v is not None)
        observed = {(a, b) for i, a in enumerate(names)
                    for b in names[i + 1:]
                    if snapshot[a] == snapshot[b]}
        if self._equal_pairs is None:
            self._equal_pairs = {pair: 1 for pair in observed}
            return
        # An equality survives only if it held in every execution that
        # observed both variables.
        surviving = {}
        for pair, count in self._equal_pairs.items():
            a, b = pair
            if a in snapshot and b in snapshot:
                if snapshot[a] is not None and snapshot[a] == snapshot[b]:
                    surviving[pair] = count + 1
            else:
                surviving[pair] = count
        self._equal_pairs = surviving

    # -- reporting ------------------------------------------------------------

    def invariants(self) -> List[Invariant]:
        """Surviving candidates, strongest (most supported) first."""
        found: List[Invariant] = []
        for name, stats in sorted(self._globals.items()):
            found.extend(self._for_variable(f"global {name!r}", name,
                                            stats))
        for tid, stats in sorted(self._returns.items()):
            if stats.none_seen:
                continue  # threads ending via Halt return nothing
            found.extend(self._for_variable(
                f"thread {tid} return", f"ret{tid}", stats))
        if self._equal_pairs:
            for (a, b), count in sorted(self._equal_pairs.items()):
                if count >= self._min_support:
                    found.append(Invariant(
                        kind="equal", subject=f"{a}=={b}",
                        description=f"global {a!r} == global {b!r}",
                        support=count))
        found.sort(key=lambda inv: (-inv.support, inv.kind, inv.subject))
        return found

    def _for_variable(self, label: str, subject: str,
                      stats: _VarStats) -> List[Invariant]:
        if stats.samples < self._min_support or stats.lo is None:
            return []
        out: List[Invariant] = []
        if stats.lo == stats.hi:
            out.append(Invariant(
                kind="constant", subject=subject,
                description=f"{label} == {stats.lo}",
                support=stats.samples))
            return out
        out.append(Invariant(
            kind="range", subject=subject,
            description=f"{stats.lo} <= {label} <= {stats.hi}",
            support=stats.samples))
        if stats.lo >= 0:
            out.append(Invariant(
                kind="sign", subject=subject,
                description=f"{label} >= 0",
                support=stats.samples))
        elif stats.hi <= 0:
            out.append(Invariant(
                kind="sign", subject=subject,
                description=f"{label} <= 0",
                support=stats.samples))
        return out

    def violated_by(self, result: ExecutionResult) -> List[Invariant]:
        """Which current candidates does ``result`` contradict?

        Useful as an anomaly signal: an execution violating a
        well-supported invariant is suspicious even when its outcome
        is OK.
        """
        violations = []
        snapshot = result.final_globals
        for invariant in self.invariants():
            if invariant.kind in ("constant", "range", "sign"):
                value = snapshot.get(invariant.subject)
                if value is None:
                    continue
                stats = self._globals.get(invariant.subject)
                if stats is None or stats.lo is None:
                    continue
                if invariant.kind == "constant" and value != stats.lo:
                    violations.append(invariant)
                elif invariant.kind == "range" and not (
                        stats.lo <= value <= stats.hi):
                    violations.append(invariant)
                elif invariant.kind == "sign" and (
                        (stats.lo >= 0 and value < 0)
                        or (stats.hi <= 0 and value > 0)):
                    violations.append(invariant)
            elif invariant.kind == "equal":
                a, b = invariant.subject.split("==")
                va, vb = snapshot.get(a), snapshot.get(b)
                if va is not None and vb is not None and va != vb:
                    violations.append(invariant)
        return violations
