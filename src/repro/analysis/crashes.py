"""WER-style crash bucketing (the paper's Sec. 5 ancestor/baseline).

Windows Error Reporting aggregates billions of failure dumps by
hashing them into buckets and triaging by volume. Our failure dumps are
a trace's ``(outcome, failure_site, failure_message)``; the bucketer
groups and ranks them. This is deliberately *report-only*: it names the
top crashers but neither localizes the predicate that predicts them nor
fixes anything — the gap SoftBorg's closed loop is measured against
(experiment E12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.progmodel.interpreter import Outcome
from repro.tracing.trace import Trace

__all__ = ["CrashBucket", "CrashBucketer"]

BucketKey = Tuple[str, Optional[Tuple[int, str, str]], str]


@dataclass
class CrashBucket:
    """One equivalence class of failure reports.

    ``path_variants`` counts the distinct decision paths observed to
    reach this bucket (when the ingesting side supplies them): WER's
    bucket-splitting signal — one site reached via many paths suggests
    a shared root cause upstream, via one path a local defect.
    """

    key: BucketKey
    count: int = 0
    first_seen_index: int = -1
    pods: set = field(default_factory=set)
    _paths: set = field(default_factory=set)

    @property
    def path_variants(self) -> int:
        return len(self._paths)

    @property
    def outcome(self) -> str:
        return self.key[0]

    @property
    def site(self) -> Optional[Tuple[int, str, str]]:
        return self.key[1]

    @property
    def message(self) -> str:
        return self.key[2]

    @property
    def distinct_pods(self) -> int:
        return len(self.pods)


class CrashBucketer:
    """Streams failure traces into ranked buckets."""

    def __init__(self):
        self._buckets: Dict[BucketKey, CrashBucket] = {}
        self._seen = 0
        self._failures = 0

    def add(self, trace: Trace,
            path: Optional[Tuple] = None) -> Optional[CrashBucket]:
        """Add one trace; returns its bucket for failures, else None.

        ``path`` (optional) is the replayed decision path; when given,
        the bucket tracks how many distinct paths reach it.
        """
        self._seen += 1
        if not trace.outcome.is_failure:
            return None
        self._failures += 1
        key: BucketKey = (trace.outcome.value, trace.failure_site,
                          trace.failure_message or "")
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = CrashBucket(key=key, first_seen_index=self._seen - 1)
            self._buckets[key] = bucket
        bucket.count += 1
        if trace.pod_id:
            bucket.pods.add(trace.pod_id)
        if path is not None:
            bucket._paths.add(tuple(path))
        return bucket

    def buckets(self) -> List[CrashBucket]:
        """All buckets, highest volume first (WER's triage order)."""
        return sorted(self._buckets.values(),
                      key=lambda b: (-b.count, b.first_seen_index))

    @property
    def total_reports(self) -> int:
        return self._seen

    @property
    def total_failures(self) -> int:
        return self._failures

    def failure_rate(self) -> float:
        if self._seen == 0:
            return 0.0
        return self._failures / self._seen
