"""Execution-tree-based bug localization.

Where CBI works from sparse samples, the hive can localize directly on
the collective execution tree: every decision edge knows how many
executions that traversed it ended in failure vs success (aggregated
from leaf outcome counters). Edges are ranked by Ochiai suspiciousness,
the standard spectrum-based fault-localization metric:

    ochiai(e) = fail(e) / sqrt(total_fail * (fail(e) + pass(e)))

A seeded bug's guard decision should rank at or near the top once the
tree has seen a handful of failures — experiments E8/E9 measure how
this rank degrades under sampling and privacy coarsening.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.progmodel.interpreter import Outcome
from repro.tree.exectree import ExecutionTree

__all__ = ["LocalizationScore", "localize_from_tree", "rank_of_block"]

Site = Tuple[int, str, str]
Decision = Tuple[Site, bool]


@dataclass
class LocalizationScore:
    """Suspiciousness of one decision edge."""

    decision: Decision
    fail_count: int
    pass_count: int
    ochiai: float

    @property
    def site(self) -> Site:
        return self.decision[0]


def localize_from_tree(tree: ExecutionTree) -> List[LocalizationScore]:
    """Rank decision edges by Ochiai suspiciousness, highest first."""
    fail_counts: Dict[Decision, int] = {}
    pass_counts: Dict[Decision, int] = {}
    total_fail = 0
    for path, outcomes in tree.iter_terminal_paths():
        failures = sum(count for outcome, count in outcomes.items()
                       if outcome.is_failure)
        successes = sum(count for outcome, count in outcomes.items()
                        if not outcome.is_failure)
        total_fail += failures
        for decision in path:
            fail_counts[decision] = fail_counts.get(decision, 0) + failures
            pass_counts[decision] = pass_counts.get(decision, 0) + successes
    scores = []
    for decision in set(fail_counts) | set(pass_counts):
        fail = fail_counts.get(decision, 0)
        passed = pass_counts.get(decision, 0)
        if total_fail == 0 or fail == 0:
            ochiai = 0.0
        else:
            ochiai = fail / math.sqrt(total_fail * (fail + passed))
        scores.append(LocalizationScore(
            decision=decision, fail_count=fail, pass_count=passed,
            ochiai=ochiai))
    scores.sort(key=lambda s: (-s.ochiai, -s.fail_count, s.decision))
    return scores


def rank_of_block(scores: List[LocalizationScore], function: str,
                  block: str) -> Optional[int]:
    """1-based rank of the first decision at (function, block).

    Used to score localization against a seeded bug's ground-truth
    guard site.
    """
    for index, score in enumerate(scores):
        _thread, fn, blk = score.site
        if fn == function and blk == block:
            return index + 1
    return None
