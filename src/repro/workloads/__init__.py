"""User-population simulation.

Stands in for the paper's ">500 million computers" running a program:
a population of users with skewed activity (Zipf) and per-user input
habits, so common paths are exercised constantly while rare input
combinations — where seeded bugs hide — surface only occasionally.
"""

from repro.workloads.population import User, UserPopulation, ZipfPopulation
from repro.workloads.scenarios import (
    Scenario,
    crash_scenario,
    deadlock_scenario,
    mixed_corpus_scenario,
    race_scenario,
    shortread_scenario,
)

__all__ = [
    "User", "UserPopulation", "ZipfPopulation",
    "Scenario", "crash_scenario", "deadlock_scenario",
    "shortread_scenario", "race_scenario", "mixed_corpus_scenario",
]
