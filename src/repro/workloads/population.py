"""Users and populations."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.progmodel.ir import Program
from repro.rng import choice_weighted, make_rng

__all__ = ["User", "UserPopulation"]

InputVector = Dict[str, int]


@dataclass
class User:
    """One end-user: habitual inputs plus occasional exploration.

    ``base_inputs`` models the user's routine (same document, same
    settings); each run perturbs every coordinate independently with
    probability ``volatility`` to a fresh uniform value. Low volatility
    makes the population heavily skewed toward a few paths — the regime
    where collective aggregation matters most.
    """

    user_id: str
    base_inputs: InputVector
    volatility: float = 0.2

    def draw(self, program: Program, rng: random.Random) -> InputVector:
        inputs = {}
        for name, (lo, hi) in program.inputs.items():
            base = self.base_inputs.get(name, lo)
            if rng.random() < self.volatility:
                inputs[name] = rng.randint(lo, hi)
            else:
                inputs[name] = base
        return inputs


class UserPopulation:
    """A Zipf-skewed population of users of one program."""

    def __init__(self, program: Program, n_users: int,
                 volatility: float = 0.2, zipf_s: float = 1.1,
                 seed: int = 0):
        if n_users < 1:
            raise ConfigError("population needs at least one user")
        if not 0.0 <= volatility <= 1.0:
            raise ConfigError("volatility must be in [0, 1]")
        self.program = program
        self._rng = make_rng(seed, "population", program.name)
        self.users: List[User] = []
        for index in range(n_users):
            base = {name: self._rng.randint(lo, hi)
                    for name, (lo, hi) in program.inputs.items()}
            self.users.append(User(
                user_id=f"user{index:05d}",
                base_inputs=base,
                volatility=volatility,
            ))
        # Zipf activity weights: user k runs the program ~ 1/(k+1)^s.
        self._weights = [1.0 / (k + 1) ** zipf_s for k in range(n_users)]

    def sample_user(self) -> User:
        return choice_weighted(self._rng, self.users, self._weights)

    def sample_execution(self) -> Tuple[User, InputVector]:
        """One natural execution: an (active user, input vector) draw."""
        user = self.sample_user()
        return user, user.draw(self.program, self._rng)

    def executions(self, count: int) -> List[Tuple[User, InputVector]]:
        return [self.sample_execution() for _ in range(count)]
