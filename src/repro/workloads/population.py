"""Users and populations."""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.progmodel.ir import Program
from repro.rng import choice_weighted, make_rng

__all__ = ["User", "UserPopulation", "ZipfPopulation"]

InputVector = Dict[str, int]


@dataclass
class User:
    """One end-user: habitual inputs plus occasional exploration.

    ``base_inputs`` models the user's routine (same document, same
    settings); each run perturbs every coordinate independently with
    probability ``volatility`` to a fresh uniform value. Low volatility
    makes the population heavily skewed toward a few paths — the regime
    where collective aggregation matters most.
    """

    user_id: str
    base_inputs: InputVector
    volatility: float = 0.2

    def draw(self, program: Program, rng: random.Random) -> InputVector:
        inputs = {}
        for name, (lo, hi) in program.inputs.items():
            base = self.base_inputs.get(name, lo)
            if rng.random() < self.volatility:
                inputs[name] = rng.randint(lo, hi)
            else:
                inputs[name] = base
        return inputs


class UserPopulation:
    """A Zipf-skewed population of users of one program."""

    def __init__(self, program: Program, n_users: int,
                 volatility: float = 0.2, zipf_s: float = 1.1,
                 seed: int = 0):
        if n_users < 1:
            raise ConfigError("population needs at least one user")
        if not 0.0 <= volatility <= 1.0:
            raise ConfigError("volatility must be in [0, 1]")
        self.program = program
        self.n_users = n_users
        self._rng = make_rng(seed, "population", program.name)
        self.users: List[User] = []
        for index in range(n_users):
            base = {name: self._rng.randint(lo, hi)
                    for name, (lo, hi) in program.inputs.items()}
            self.users.append(User(
                user_id=f"user{index:05d}",
                base_inputs=base,
                volatility=volatility,
            ))
        # Zipf activity weights: user k runs the program ~ 1/(k+1)^s.
        self._weights = [1.0 / (k + 1) ** zipf_s for k in range(n_users)]

    def sample_user(self) -> User:
        return choice_weighted(self._rng, self.users, self._weights)

    def sample_execution(self) -> Tuple[User, InputVector]:
        """One natural execution: an (active user, input vector) draw."""
        user = self.sample_user()
        return user, user.draw(self.program, self._rng)

    def executions(self, count: int) -> List[Tuple[User, InputVector]]:
        return [self.sample_execution() for _ in range(count)]


class ZipfPopulation:
    """A Zipf-skewed population that never materializes its users.

    :class:`UserPopulation` builds every :class:`User` up front —
    perfect for fifty, hopeless for the million-user fleets service
    mode simulates. This variant derives each user on demand:

    * a user's habitual inputs are a pure function of
      ``make_rng(seed, "user", index)``, so user #734188 is identical
      whether it is the first or the billionth one touched;
    * Zipf sampling inverts the cumulative weight table with
      ``bisect`` — O(log n) per draw over a float table built once
      (the only O(n) cost, ~8 bytes per user);
    * constructed users are memoized up to ``memo_cap`` entries (the
      hot head of a Zipf distribution is tiny; the cold tail is cheap
      to rebuild), so memory tracks *active* users, not population.

    Sampling statistics match the eager class in shape, not in exact
    stream: the two classes draw from their RNGs in different orders,
    so they are separate, individually deterministic populations.
    """

    def __init__(self, program: Program, n_users: int,
                 volatility: float = 0.2, zipf_s: float = 1.1,
                 seed: int = 0, memo_cap: int = 4096):
        if n_users < 1:
            raise ConfigError("population needs at least one user")
        if not 0.0 <= volatility <= 1.0:
            raise ConfigError("volatility must be in [0, 1]")
        self.program = program
        self.n_users = n_users
        self.volatility = volatility
        self.seed = seed
        self.memo_cap = memo_cap
        self._rng = make_rng(seed, "population", program.name)
        # Cumulative Zipf weights, normalized to (0, 1].
        cumulative: List[float] = []
        total = 0.0
        for k in range(n_users):
            total += 1.0 / (k + 1) ** zipf_s
            cumulative.append(total)
        self._cumulative = [value / total for value in cumulative]
        self._memo: Dict[int, User] = {}

    def user(self, index: int) -> User:
        """User #``index``, derived (or recalled) on demand."""
        cached = self._memo.get(index)
        if cached is not None:
            return cached
        rng = make_rng(self.seed, "user", index)
        base = {name: rng.randint(lo, hi)
                for name, (lo, hi) in self.program.inputs.items()}
        user = User(user_id=f"user{index:07d}", base_inputs=base,
                    volatility=self.volatility)
        if len(self._memo) >= self.memo_cap:
            # Evict the oldest insertion (dicts preserve order): the
            # Zipf head re-enters immediately, the tail stays cold.
            self._memo.pop(next(iter(self._memo)))
        self._memo[index] = user
        return user

    def sample_user(self) -> User:
        point = self._rng.random()
        return self.user(bisect_left(self._cumulative, point))

    def sample_execution(self) -> Tuple[User, InputVector]:
        """One natural execution: an (active user, input vector) draw."""
        user = self.sample_user()
        return user, user.draw(self.program, self._rng)

    def executions(self, count: int) -> List[Tuple[User, InputVector]]:
        return [self.sample_execution() for _ in range(count)]
