"""Canned end-to-end scenarios for examples, tests, and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.progmodel.bugs import BugKind
from repro.progmodel.corpus import (
    CorpusConfig,
    SeededProgram,
    generate_corpus,
    generate_program,
    make_crash_demo,
    make_deadlock_demo,
    make_race_demo,
    make_shortread_demo,
)
from repro.workloads.population import UserPopulation

__all__ = [
    "Scenario", "crash_scenario", "deadlock_scenario",
    "shortread_scenario", "race_scenario", "mixed_corpus_scenario",
]


@dataclass
class Scenario:
    """A program-with-ground-truth plus its user population."""

    seeded: SeededProgram
    population: UserPopulation
    fault_rate: float = 0.0
    description: str = ""

    @property
    def program(self):
        return self.seeded.program

    @property
    def bugs(self):
        return self.seeded.bugs


def crash_scenario(n_users: int = 50, volatility: float = 0.3,
                   seed: int = 0) -> Scenario:
    """The quickstart: a crash hiding behind a rare input combination."""
    seeded = make_crash_demo()
    population = UserPopulation(seeded.program, n_users,
                                volatility=volatility, seed=seed)
    return Scenario(seeded=seeded, population=population,
                    description="rare-input crash")


def deadlock_scenario(n_users: int = 30, volatility: float = 0.5,
                      seed: int = 0) -> Scenario:
    """Two threads with an AB/BA lock pattern behind an input gate."""
    seeded = make_deadlock_demo()
    population = UserPopulation(seeded.program, n_users,
                                volatility=volatility, seed=seed)
    return Scenario(seeded=seeded, population=population,
                    description="schedule-dependent deadlock")


def shortread_scenario(n_users: int = 40, volatility: float = 0.3,
                       fault_rate: float = 0.05, seed: int = 0) -> Scenario:
    """An unhandled short read that only environment faults expose."""
    seeded = make_shortread_demo()
    population = UserPopulation(seeded.program, n_users,
                                volatility=volatility, seed=seed)
    return Scenario(seeded=seeded, population=population,
                    fault_rate=fault_rate,
                    description="unhandled short read under faults")


def race_scenario(n_users: int = 30, volatility: float = 0.3,
                  seed: int = 0) -> Scenario:
    """Two threads race on a shared counter; lost updates trip a final
    assertion under unlucky interleavings."""
    seeded = make_race_demo()
    population = UserPopulation(seeded.program, n_users,
                                volatility=volatility, seed=seed)
    return Scenario(seeded=seeded, population=population,
                    description="unsynchronized shared counter (race)")


def mixed_corpus_scenario(n_programs: int = 5, n_users: int = 40,
                          bug_kinds: Sequence[BugKind] = (
                              BugKind.CRASH, BugKind.ASSERT),
                          config: Optional[CorpusConfig] = None,
                          seed: int = 0) -> List[Scenario]:
    """A fleet of generated programs, each with its own population."""
    config = config or CorpusConfig(seed=seed)
    scenarios = []
    for index, seeded in enumerate(
            generate_corpus(config, n_programs, bug_kinds)):
        population = UserPopulation(seeded.program, n_users,
                                    volatility=0.3, seed=seed + index)
        scenarios.append(Scenario(
            seeded=seeded, population=population,
            description=f"generated corpus program {seeded.name}"))
    return scenarios
