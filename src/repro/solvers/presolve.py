"""CNF preprocessing (presolve) shared by all portfolio members.

Standard simplifications applied once before search:

* **unit propagation to fixpoint** — forced literals are eliminated
  from the formula (with conflict detection: presolve can answer UNSAT
  outright);
* **pure-literal elimination** — a variable occurring in one polarity
  only is satisfied for free;
* **subsumption** — a clause that is a superset of another is
  redundant;
* **tautology removal** — clauses containing ``x`` and ``-x``.

The result maps back to the original variables: the presolver records
the assignments it forced so a model of the reduced formula extends to
a model of the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.solvers.cnf import CNF

__all__ = ["PresolveResult", "presolve"]


@dataclass
class PresolveResult:
    """Outcome of preprocessing.

    ``status`` is "sat" (everything satisfied by forced/pure literals
    alone), "unsat" (conflict during propagation), or "open" (search
    still needed on ``reduced``). ``forced`` holds the assignments the
    presolver committed to; extend any model of ``reduced`` with them
    (and default values for eliminated don't-care variables) to get a
    model of the original formula.
    """

    status: str
    original: CNF
    reduced: Optional[CNF] = None
    forced: Dict[int, bool] = field(default_factory=dict)
    clauses_removed: int = 0

    def extend_model(self, model: Dict[int, bool]) -> Dict[int, bool]:
        full = dict(model)
        full.update(self.forced)
        for var in self.original.variables():
            full.setdefault(var, False)
        return full


def presolve(cnf: CNF) -> PresolveResult:
    """Simplify ``cnf``; see :class:`PresolveResult`."""
    clauses: List[FrozenSet[int]] = []
    for clause in cnf.clauses:
        literals = frozenset(clause)
        if any(-lit in literals for lit in literals):
            continue  # tautology
        clauses.append(literals)

    forced: Dict[int, bool] = {}

    def assign(lit: int) -> bool:
        """Record a forced literal; False on conflict."""
        var, value = abs(lit), lit > 0
        if var in forced:
            return forced[var] == value
        forced[var] = value
        return True

    changed = True
    while changed:
        changed = False
        # Unit propagation.
        next_clauses: List[FrozenSet[int]] = []
        for literals in clauses:
            reduced: Set[int] = set()
            satisfied = False
            for lit in literals:
                var = abs(lit)
                if var in forced:
                    if forced[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    reduced.add(lit)
            if satisfied:
                changed = True
                continue
            if not reduced:
                return PresolveResult(status="unsat", original=cnf,
                                      forced=forced)
            if len(reduced) == 1:
                if not assign(next(iter(reduced))):
                    return PresolveResult(status="unsat", original=cnf,
                                          forced=forced)
                changed = True
                continue
            if len(reduced) != len(literals):
                changed = True
            next_clauses.append(frozenset(reduced))
        clauses = next_clauses

        # Pure literals (on the residual formula).
        polarity: Dict[int, Set[bool]] = {}
        for literals in clauses:
            for lit in literals:
                polarity.setdefault(abs(lit), set()).add(lit > 0)
        pures = [var for var, signs in polarity.items()
                 if len(signs) == 1]
        for var in pures:
            sign = next(iter(polarity[var]))
            if not assign(var if sign else -var):
                return PresolveResult(status="unsat", original=cnf,
                                      forced=forced)
        if pures:
            changed = True

    # Subsumption (quadratic; presolved formulas are small enough).
    clauses.sort(key=len)
    kept: List[FrozenSet[int]] = []
    for candidate in clauses:
        if any(previous <= candidate for previous in kept):
            continue
        kept.append(candidate)

    if not kept:
        return PresolveResult(status="sat", original=cnf, forced=forced,
                              clauses_removed=cnf.n_clauses)
    reduced_cnf = CNF(
        n_vars=cnf.n_vars,
        clauses=tuple(tuple(sorted(c, key=abs)) for c in kept),
        name=f"{cnf.name}+presolved",
        family=cnf.family,
    )
    return PresolveResult(
        status="open", original=cnf, reduced=reduced_cnf, forced=forced,
        clauses_removed=cnf.n_clauses - len(kept))
