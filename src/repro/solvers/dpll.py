"""Systematic DPLL with unit propagation and Jeroslow-Wang branching.

The portfolio's "structured instance" specialist: complete (can prove
UNSAT), with propagation that exploits clause structure. Deliberately
*without* failed-literal probing (that is :class:`LookaheadSolver`'s
niche) and without clause learning — it represents the plain systematic
baseline the paper's portfolio argument starts from.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.solvers.budget import (
    BudgetExceeded, CostMeter, SolveResult, SolveStatus,
)
from repro.solvers.cnf import CNF

__all__ = ["DPLLSolver"]

Assignment = Dict[int, bool]


class _Conflict(Exception):
    pass


class DPLLSolver:
    """Recursive DPLL. ``heuristic`` is "jw" (Jeroslow-Wang, default)
    or "random" (seeded uniform choice)."""

    def __init__(self, heuristic: str = "jw", seed: int = 0):
        if heuristic not in ("jw", "random"):
            raise ValueError(f"unknown heuristic {heuristic!r}")
        self.heuristic = heuristic
        self.seed = seed
        self.name = f"dpll-{heuristic}"

    def solve(self, cnf: CNF, budget: Optional[int] = None) -> SolveResult:
        meter = CostMeter(budget)
        rng = random.Random(self.seed)
        # watch lists: literal -> clause indices containing it
        occurrences: Dict[int, List[int]] = {}
        for idx, clause in enumerate(cnf.clauses):
            for lit in clause:
                occurrences.setdefault(lit, []).append(idx)
        try:
            assignment: Assignment = {}
            trail: List[int] = []
            self._propagate_initial(cnf, assignment, trail, meter)
            if self._search(cnf, occurrences, assignment, meter, rng):
                model = dict(assignment)
                for v in cnf.variables():
                    model.setdefault(v, False)
                return SolveResult(SolveStatus.SAT, meter.cost, model,
                                   self.name, cnf.name)
            return SolveResult(SolveStatus.UNSAT, meter.cost, None,
                               self.name, cnf.name)
        except BudgetExceeded:
            return SolveResult(SolveStatus.TIMEOUT,
                               budget if budget is not None else meter.cost,
                               None, self.name, cnf.name)
        except _Conflict:
            # Top-level conflict during initial unit propagation.
            return SolveResult(SolveStatus.UNSAT, meter.cost, None,
                               self.name, cnf.name)

    # -- internals ---------------------------------------------------------------

    def _propagate_initial(self, cnf, assignment, trail, meter) -> None:
        for clause in cnf.clauses:
            meter.charge()
            if len(clause) == 1:
                lit = clause[0]
                var, value = abs(lit), lit > 0
                if assignment.get(var, value) != value:
                    raise _Conflict()
                if var not in assignment:
                    assignment[var] = value
                    trail.append(var)
        self._propagate(cnf, assignment, trail, meter)

    def _propagate(self, cnf, assignment, trail, meter) -> None:
        """Exhaustive unit propagation; raises _Conflict on empty clause."""
        changed = True
        while changed:
            changed = False
            for clause in cnf.clauses:
                meter.charge()
                unassigned = None
                satisfied = False
                count = 0
                for lit in clause:
                    value = assignment.get(abs(lit))
                    if value is None:
                        unassigned = lit
                        count += 1
                        if count > 1:
                            break
                    elif value == (lit > 0):
                        satisfied = True
                        break
                if satisfied or count > 1:
                    continue
                if count == 0:
                    raise _Conflict()
                var, value = abs(unassigned), unassigned > 0
                assignment[var] = value
                trail.append(var)
                changed = True

    def _pick(self, cnf, assignment, meter, rng) -> Optional[Tuple[int, bool]]:
        if self.heuristic == "random":
            unassigned = [v for v in cnf.variables() if v not in assignment]
            meter.charge(len(unassigned) // 8 + 1)
            if not unassigned:
                return None
            return rng.choice(unassigned), rng.random() < 0.5
        # Jeroslow-Wang: score literals by sum over clauses of 2^-|c|.
        scores: Dict[int, float] = {}
        for clause in cnf.clauses:
            meter.charge()
            satisfied = any(assignment.get(abs(lit)) == (lit > 0)
                            for lit in clause)
            if satisfied:
                continue
            weight = 2.0 ** -len(clause)
            for lit in clause:
                if abs(lit) not in assignment:
                    scores[lit] = scores.get(lit, 0.0) + weight
        if not scores:
            return None
        best = max(scores, key=lambda lit: (scores[lit], -abs(lit), lit > 0))
        return abs(best), best > 0

    def _search(self, cnf, occurrences, assignment, meter, rng) -> bool:
        pick = self._pick(cnf, assignment, meter, rng)
        if pick is None:
            # Everything relevant assigned; remaining clauses satisfied.
            return True
        var, first_value = pick
        for value in (first_value, not first_value):
            meter.charge()  # a decision
            assignment[var] = value
            trail: List[int] = [var]
            try:
                self._propagate(cnf, assignment, trail, meter)
                if self._search(cnf, occurrences, assignment, meter, rng):
                    return True
            except _Conflict:
                pass
            for v in trail:
                del assignment[v]
        return False
