"""SAT solving and the solver portfolio (paper Sec. 4).

The paper's only quantitative claim: "by replacing a single SAT solver
with a portfolio of three different SAT solvers running in parallel, we
achieved a 10x speedup in constraint solving time with only a 3x
increase in computation resources. We believe that each solver is fast
in solving some path constraints but slow on others and, for most
constraints, at least one solver completes much faster than the
others."

This subpackage implements that setup from scratch: a CNF layer with
instance generators of deliberately different character, three solvers
with genuinely different strengths (systematic DPLL, stochastic local
search, unit-propagation lookahead), deterministic virtual-cost
metering, and the portfolio runner that measures speedup vs. resources.
"""

from repro.solvers.cnf import (
    CNF,
    evaluate,
    implication_chain,
    pigeonhole,
    random_ksat,
    graph_coloring,
)
from repro.solvers.budget import CostMeter, SolveResult, SolveStatus
from repro.solvers.dpll import DPLLSolver
from repro.solvers.presolve import PresolveResult, presolve
from repro.solvers.walksat import WalkSATSolver
from repro.solvers.lookahead import LookaheadSolver
from repro.solvers.portfolio import (
    Portfolio,
    PortfolioOutcome,
    PortfolioReport,
    run_portfolio_experiment,
)

__all__ = [
    "CNF", "evaluate", "random_ksat", "pigeonhole", "implication_chain",
    "graph_coloring",
    "CostMeter", "SolveResult", "SolveStatus",
    "DPLLSolver", "WalkSATSolver", "LookaheadSolver",
    "Portfolio", "PortfolioOutcome", "PortfolioReport",
    "run_portfolio_experiment",
    "presolve", "PresolveResult",
]
