"""The solver portfolio (paper Sec. 4).

"When investing in financial instruments, choosing the equities with
the highest return is 'undecidable', so one must invest in parallel in
several equities" — the portfolio runs k different solvers in virtual
parallel on each instance and takes the first answer. With the
deterministic cost meters, parallel execution is exact: the portfolio's
completion time on an instance is the minimum cost over member solvers,
and the resources consumed are k times that minimum (every member runs
until the winner finishes, then is killed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import BaseReport
from repro.errors import SolverError
from repro.obs import Instrumented
from repro.solvers.budget import SolveResult, SolveStatus
from repro.solvers.cnf import CNF, evaluate

__all__ = [
    "Portfolio", "PortfolioOutcome", "PortfolioReport",
    "run_portfolio_experiment",
]


@dataclass
class PortfolioOutcome:
    """One instance's portfolio run."""

    instance: str
    family: str
    winner: str                    # solver that answered first
    status: SolveStatus
    time: int                      # virtual completion time (min cost)
    resources: int                 # k * time (all members run in parallel)
    member_results: Dict[str, SolveResult] = field(default_factory=dict)


class Portfolio(Instrumented):
    """Runs member solvers in (virtual) parallel on one instance."""

    obs_namespace = "solvers.portfolio"

    def __init__(self, solvers: Sequence, budget: int = 2_000_000):
        if not solvers:
            raise SolverError("portfolio needs at least one solver")
        names = [s.name for s in solvers]
        if len(set(names)) != len(names):
            raise SolverError(f"duplicate solver names in portfolio: {names}")
        self.solvers = list(solvers)
        self.budget = budget
        self._obs_runs = self.obs_counter("runs")
        self._obs_timeouts = self.obs_counter("timeouts")
        self._obs_cost = self.obs_histogram("cost", unit="cost-units")
        # Per-member win counters: the portfolio's whole point is that
        # no single solver dominates, so win-rates are a first-class
        # platform metric.
        self._obs_wins = {solver.name: self.obs_counter(
            f"wins.{solver.name}") for solver in self.solvers}
        self._obs_wall = self.obs_timer("wall")

    @property
    def size(self) -> int:
        return len(self.solvers)

    def run(self, cnf: CNF) -> PortfolioOutcome:
        results: Dict[str, SolveResult] = {}
        with self._obs_wall.time():
            for solver in self.solvers:
                result = solver.solve(cnf, budget=self.budget)
                if result.status is SolveStatus.SAT:
                    assert result.model is not None
                    if not evaluate(cnf, result.model):
                        raise SolverError(
                            f"{solver.name} returned an invalid model"
                            f" on {cnf.name}")
                results[solver.name] = result
        solved = {name: r for name, r in results.items() if r.solved}
        if solved:
            winner = min(solved, key=lambda n: (solved[n].cost, n))
            time = solved[winner].cost
            status = solved[winner].status
            self._obs_wins[winner].inc()
        else:
            winner = ""
            time = self.budget
            status = SolveStatus.TIMEOUT
            self._obs_timeouts.inc()
        self._obs_runs.inc()
        self._obs_cost.observe(time)
        return PortfolioOutcome(
            instance=cnf.name,
            family=cnf.family,
            winner=winner,
            status=status,
            time=time,
            resources=self.size * time,
            member_results=results,
        )


@dataclass
class PortfolioReport(BaseReport):
    """Aggregate of a portfolio experiment over an instance set (E1).

    Baseline semantics follow the paper: the comparison is against
    running *a single SAT solver* (each member considered in turn as
    the hypothetical single choice). ``speedup_vs(name)`` is
    total-single-time / total-portfolio-time; ``resource_ratio_vs``
    compares total resources the same way.
    """

    outcomes: List[PortfolioOutcome]
    portfolio_size: int
    budget: int

    @property
    def total_portfolio_time(self) -> int:
        return sum(o.time for o in self.outcomes)

    @property
    def total_portfolio_resources(self) -> int:
        return sum(o.resources for o in self.outcomes)

    def total_single_time(self, solver_name: str) -> int:
        """Total cost of always using one solver (TIMEOUT = budget)."""
        total = 0
        for outcome in self.outcomes:
            result = outcome.member_results[solver_name]
            total += result.cost if result.solved else self.budget
        return total

    def speedup_vs(self, solver_name: str) -> float:
        return self.total_single_time(solver_name) / max(
            1, self.total_portfolio_time)

    def resource_ratio_vs(self, solver_name: str) -> float:
        return self.total_portfolio_resources / max(
            1, self.total_single_time(solver_name))

    def solved_count(self, solver_name: Optional[str] = None) -> int:
        if solver_name is None:
            return sum(1 for o in self.outcomes
                       if o.status is not SolveStatus.TIMEOUT)
        return sum(1 for o in self.outcomes
                   if o.member_results[solver_name].solved)

    def wins_by_solver(self) -> Dict[str, int]:
        wins: Dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.winner:
                wins[outcome.winner] = wins.get(outcome.winner, 0) + 1
        return wins

    def per_family_times(self) -> Dict[str, Dict[str, int]]:
        """family -> solver -> total time (budget-charged timeouts)."""
        table: Dict[str, Dict[str, int]] = {}
        for outcome in self.outcomes:
            row = table.setdefault(outcome.family, {})
            for name, result in outcome.member_results.items():
                cost = result.cost if result.solved else self.budget
                row[name] = row.get(name, 0) + cost
            row["portfolio"] = row.get("portfolio", 0) + outcome.time
        return table

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready aggregate (the per-outcome detail stays out —
        member SolveResults carry models and are not snapshot material)."""
        names = sorted({name for outcome in self.outcomes
                        for name in outcome.member_results})
        return {
            "instances": len(self.outcomes),
            "portfolio_size": self.portfolio_size,
            "budget": self.budget,
            "solved": self.solved_count(),
            "total_portfolio_time": self.total_portfolio_time,
            "total_portfolio_resources": self.total_portfolio_resources,
            "wins": self.wins_by_solver(),
            "single_times": {name: self.total_single_time(name)
                             for name in names},
            "speedups": {name: round(self.speedup_vs(name), 6)
                         for name in names},
            "per_family": self.per_family_times(),
        }


def run_portfolio_experiment(solvers: Sequence, instances: Sequence[CNF],
                             budget: int = 2_000_000) -> PortfolioReport:
    """Run the full E1 experiment: every solver on every instance."""
    portfolio = Portfolio(solvers, budget=budget)
    outcomes = [portfolio.run(cnf) for cnf in instances]
    return PortfolioReport(outcomes=outcomes,
                           portfolio_size=portfolio.size,
                           budget=budget)
