"""Failed-literal lookahead solver.

At every decision point this solver *probes* candidate variables: it
tentatively asserts each polarity and runs unit propagation. A polarity
that propagates to a conflict is a *failed literal* — its negation is
forced, no decision needed; a variable failing both ways refutes the
current node outright. Probing is expensive per node, which makes this
solver slower than plain DPLL on instances where decisions are cheap —
but it detects deeply hidden implications (masked implication chains)
at the root, where DPLL would rediscover the conflict exponentially
many times.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.solvers.budget import (
    BudgetExceeded, CostMeter, SolveResult, SolveStatus,
)
from repro.solvers.cnf import CNF

__all__ = ["LookaheadSolver"]

Assignment = Dict[int, bool]


class _Conflict(Exception):
    pass


class LookaheadSolver:
    """DPLL + failed-literal probing at every node."""

    def __init__(self, probe_limit: int = 64):
        # Probing every variable at every node is overkill; probe the
        # first ``probe_limit`` unassigned variables (by index) — chain
        # structures put related variables at adjacent indices, which
        # is exactly where probing pays off.
        self.probe_limit = probe_limit
        self.name = "lookahead"

    def solve(self, cnf: CNF, budget: Optional[int] = None) -> SolveResult:
        meter = CostMeter(budget)
        try:
            assignment: Assignment = {}
            trail: List[int] = []
            try:
                self._assert_units(cnf, assignment, trail, meter)
                self._propagate(cnf, assignment, trail, meter)
            except _Conflict:
                return SolveResult(SolveStatus.UNSAT, meter.cost, None,
                                   self.name, cnf.name)
            if self._search(cnf, assignment, meter):
                model = dict(assignment)
                for v in cnf.variables():
                    model.setdefault(v, False)
                return SolveResult(SolveStatus.SAT, meter.cost, model,
                                   self.name, cnf.name)
            return SolveResult(SolveStatus.UNSAT, meter.cost, None,
                               self.name, cnf.name)
        except BudgetExceeded:
            return SolveResult(SolveStatus.TIMEOUT,
                               budget if budget is not None else meter.cost,
                               None, self.name, cnf.name)

    # -- internals ---------------------------------------------------------------

    def _assert_units(self, cnf, assignment, trail, meter) -> None:
        for clause in cnf.clauses:
            meter.charge()
            if len(clause) == 1:
                lit = clause[0]
                var, value = abs(lit), lit > 0
                if assignment.get(var, value) != value:
                    raise _Conflict()
                if var not in assignment:
                    assignment[var] = value
                    trail.append(var)

    def _propagate(self, cnf, assignment, trail, meter) -> None:
        changed = True
        while changed:
            changed = False
            for clause in cnf.clauses:
                meter.charge()
                unassigned = None
                satisfied = False
                count = 0
                for lit in clause:
                    value = assignment.get(abs(lit))
                    if value is None:
                        unassigned = lit
                        count += 1
                        if count > 1:
                            break
                    elif value == (lit > 0):
                        satisfied = True
                        break
                if satisfied or count > 1:
                    continue
                if count == 0:
                    raise _Conflict()
                assignment[abs(unassigned)] = unassigned > 0
                trail.append(abs(unassigned))
                changed = True

    def _probe(self, cnf, assignment, meter,
               ) -> Tuple[bool, Optional[Tuple[int, bool]], List[int]]:
        """Probe unassigned variables for failed literals.

        Returns (conflict_both_ways, forced_literal, forced_trail):
        * conflict_both_ways: the node is refuted;
        * forced_literal: a (var, value) whose opposite failed —
          already applied and propagated into ``assignment`` with its
          trail returned.
        """
        probed = 0
        for var in cnf.variables():
            if var in assignment:
                continue
            if probed >= self.probe_limit:
                break
            probed += 1
            failures = []
            for value in (True, False):
                meter.charge()  # a probe
                assignment[var] = value
                probe_trail = [var]
                try:
                    self._propagate(cnf, assignment, probe_trail, meter)
                except _Conflict:
                    failures.append(value)
                for v in probe_trail:
                    del assignment[v]
            if len(failures) == 2:
                return True, None, []
            if len(failures) == 1:
                forced_value = not failures[0]
                assignment[var] = forced_value
                trail = [var]
                try:
                    self._propagate(cnf, assignment, trail, meter)
                except _Conflict:
                    # Forced value also conflicts -> refuted node.
                    for v in trail:
                        del assignment[v]
                    return True, None, []
                return False, (var, forced_value), trail
        return False, None, []

    def _search(self, cnf, assignment, meter) -> bool:
        # Probe until quiescence: each forced literal may enable more.
        forced_trails: List[List[int]] = []
        while True:
            refuted, forced, trail = self._probe(cnf, assignment, meter)
            if refuted:
                for t in forced_trails:
                    for v in t:
                        del assignment[v]
                return False
            if forced is None:
                break
            forced_trails.append(trail)

        var = next((v for v in cnf.variables() if v not in assignment), None)
        if var is None:
            return True
        for value in (True, False):
            meter.charge()  # decision
            assignment[var] = value
            trail = [var]
            try:
                self._propagate(cnf, assignment, trail, meter)
                if self._search(cnf, assignment, meter):
                    return True
            except _Conflict:
                pass
            for v in trail:
                del assignment[v]
        for t in forced_trails:
            for v in t:
                del assignment[v]
        return False
