"""CNF formulas and instance generators.

Variables are integers 1..n; literals are nonzero ints (negative =
negated), DIMACS style. The generators produce the three instance
families whose *complementary* hardness profiles drive the portfolio
experiment:

* :func:`random_ksat` — uniform random k-SAT; near the phase-transition
  ratio these are easy for stochastic local search when satisfiable but
  painful for systematic search.
* :func:`implication_chain` — a masked-UNSAT implication cycle buried
  in decoy clauses; failed-literal probing refutes it at the root.
* :func:`pigeonhole` / :func:`graph_coloring` — structured instances
  where systematic DPLL search (and its pruning) dominates, and local
  search flounders (pigeonhole is unsatisfiable outright).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import SolverError

__all__ = [
    "CNF", "evaluate", "random_ksat", "pigeonhole", "implication_chain",
    "graph_coloring",
]

Clause = Tuple[int, ...]
Assignment = Dict[int, bool]


@dataclass(frozen=True)
class CNF:
    """An immutable CNF formula."""

    n_vars: int
    clauses: Tuple[Clause, ...]
    name: str = ""
    family: str = ""

    def __post_init__(self):
        for clause in self.clauses:
            for lit in clause:
                if lit == 0 or abs(lit) > self.n_vars:
                    raise SolverError(
                        f"literal {lit} out of range for {self.n_vars} vars")

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    def variables(self) -> range:
        return range(1, self.n_vars + 1)


def evaluate(cnf: CNF, assignment: Assignment) -> bool:
    """True iff ``assignment`` (total or partial-with-all-needed-vars)
    satisfies every clause."""
    for clause in cnf.clauses:
        if not any(assignment.get(abs(lit), None) == (lit > 0)
                   for lit in clause):
            return False
    return True


def random_ksat(n_vars: int, n_clauses: int, k: int = 3,
                rng: Optional[random.Random] = None,
                force_satisfiable: bool = False,
                name: str = "") -> CNF:
    """Uniform random k-SAT.

    With ``force_satisfiable`` a hidden assignment is planted: every
    clause is redrawn until the planted assignment satisfies it, giving
    a guaranteed-SAT instance with random-looking structure (the family
    WalkSAT eats for breakfast).
    """
    rng = rng if rng is not None else random.Random(0)
    if k > n_vars:
        raise SolverError(f"k={k} exceeds n_vars={n_vars}")
    planted = {v: rng.random() < 0.5 for v in range(1, n_vars + 1)}
    clauses: List[Clause] = []
    for _ in range(n_clauses):
        while True:
            chosen = rng.sample(range(1, n_vars + 1), k)
            clause = tuple(v if rng.random() < 0.5 else -v for v in chosen)
            if not force_satisfiable:
                break
            if any(planted[abs(lit)] == (lit > 0) for lit in clause):
                break
        clauses.append(clause)
    return CNF(n_vars=n_vars, clauses=tuple(clauses),
               name=name or f"rand{k}sat-{n_vars}v{n_clauses}c",
               family="random")


def pigeonhole(holes: int, name: str = "") -> CNF:
    """PHP(holes+1, holes): provably unsatisfiable, exponential for
    resolution-based solvers — the classic systematic-search stressor.

    Variable p(i,j) = pigeon i sits in hole j, i in [0,holes], j in
    [0,holes-1], numbered 1 + i*holes + j.
    """
    pigeons = holes + 1

    def var(i: int, j: int) -> int:
        return 1 + i * holes + j

    clauses: List[Clause] = []
    for i in range(pigeons):
        clauses.append(tuple(var(i, j) for j in range(holes)))
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append((-var(i1, j), -var(i2, j)))
    return CNF(n_vars=pigeons * holes, clauses=tuple(clauses),
               name=name or f"php-{holes}", family="structured")


def implication_chain(chain_vars: int, decoy_vars: int,
                      decoy_ratio: float = 4.2,
                      rng=None,
                      name: str = "") -> CNF:
    """A masked-UNSAT implication cycle — the failed-literal family.

    Construction: variables 1..chain_vars form a binary equivalence
    cycle (all chain variables must be equal), plus two binary clauses
    excluding both the all-true and all-false solutions, making the
    chain subformula UNSAT on its own. The chain is masked by a dense,
    *satisfiable-looking* planted random 3-SAT instance over disjoint
    decoy variables whose high literal counts attract clause-counting
    branching heuristics.

    Complementarity rationale:

    * a failed-literal prober refutes the instance at the root: probing
      any chain variable unit-propagates the whole cycle into a
      conflict for *both* polarities — cost linear in the chain,
      independent of the decoys;
    * plain DPLL is drawn into the decoy subspace first (its clause
      score dwarfs the chain's) and re-derives the chain refutation
      under exponentially many decoy assignments;
    * local search cannot prove UNSAT at all and burns its budget.
    """
    rng = rng if rng is not None else random.Random(0)
    if chain_vars < 4:
        raise SolverError("implication_chain needs at least 4 chain vars")
    if decoy_vars < 3:
        raise SolverError("implication_chain needs at least 3 decoy vars")
    clauses: List[Clause] = []
    # Equivalence cycle over chain variables: v_i <-> v_{i+1}.
    for v in range(1, chain_vars):
        clauses.append((-v, v + 1))
        clauses.append((v, -(v + 1)))
    clauses.append((-chain_vars, 1))
    clauses.append((chain_vars, -1))
    # Exclude the two all-equal assignments -> chain core is UNSAT.
    mid = max(2, chain_vars // 2)
    clauses.append((-1, -mid))
    clauses.append((1, mid))
    # Decoy block: planted (guaranteed-satisfiable) dense random 3-SAT
    # over variables chain_vars+1 .. chain_vars+decoy_vars.
    first_decoy = chain_vars + 1
    planted = {v: rng.random() < 0.5
               for v in range(first_decoy, first_decoy + decoy_vars)}
    n_decoy_clauses = int(decoy_ratio * decoy_vars)
    for _ in range(n_decoy_clauses):
        while True:
            chosen = rng.sample(range(first_decoy, first_decoy + decoy_vars),
                                min(3, decoy_vars))
            clause = tuple(v if rng.random() < 0.5 else -v for v in chosen)
            if any(planted[abs(lit)] == (lit > 0) for lit in clause):
                break
        clauses.append(clause)
    rng.shuffle(clauses)
    return CNF(n_vars=chain_vars + decoy_vars, clauses=tuple(clauses),
               name=name or f"chain-{chain_vars}+{decoy_vars}",
               family="implication")


def graph_coloring(n_nodes: int, edge_probability: float, colors: int,
                   rng: Optional[random.Random] = None,
                   name: str = "") -> CNF:
    """Random-graph k-coloring. Variable c(v,k) = node v has color k.

    Near-critical edge densities give hard-but-structured instances
    where systematic search with propagation does well.
    """
    rng = rng if rng is not None else random.Random(0)

    def var(node: int, color: int) -> int:
        return 1 + node * colors + color

    clauses: List[Clause] = []
    for node in range(n_nodes):
        clauses.append(tuple(var(node, c) for c in range(colors)))
        for c1 in range(colors):
            for c2 in range(c1 + 1, colors):
                clauses.append((-var(node, c1), -var(node, c2)))
    for a in range(n_nodes):
        for b in range(a + 1, n_nodes):
            if rng.random() < edge_probability:
                for c in range(colors):
                    clauses.append((-var(a, c), -var(b, c)))
    return CNF(n_vars=n_nodes * colors, clauses=tuple(clauses),
               name=name or f"color-{n_nodes}n{colors}c", family="structured")
