"""WalkSAT: stochastic local search (Selman/Kautz/Cohen style).

The portfolio's random-SAT specialist: on satisfiable random instances
it typically lands a model in a few thousand flips where systematic
search backtracks for orders of magnitude longer. It is *incomplete*:
it can never prove UNSAT, so on unsatisfiable instances it burns its
whole budget and reports TIMEOUT — exactly the behaviour that makes it
useless alone but valuable inside a portfolio.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.solvers.budget import (
    BudgetExceeded, CostMeter, SolveResult, SolveStatus,
)
from repro.solvers.cnf import CNF

__all__ = ["WalkSATSolver"]


class WalkSATSolver:
    """WalkSAT with noise parameter p and random restarts."""

    def __init__(self, noise: float = 0.5, flips_per_try: int = 100_000,
                 seed: int = 0):
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        self.noise = noise
        self.flips_per_try = flips_per_try
        self.seed = seed
        self.name = "walksat"

    def solve(self, cnf: CNF, budget: Optional[int] = None) -> SolveResult:
        meter = CostMeter(budget)
        rng = random.Random(self.seed)
        try:
            while True:  # restart loop, bounded by the budget
                model = self._try(cnf, meter, rng)
                if model is not None:
                    return SolveResult(SolveStatus.SAT, meter.cost, model,
                                       self.name, cnf.name)
                if budget is None:
                    # No budget and no model after one try: give up
                    # rather than loop forever on UNSAT instances.
                    return SolveResult(SolveStatus.TIMEOUT, meter.cost,
                                       None, self.name, cnf.name)
        except BudgetExceeded:
            return SolveResult(SolveStatus.TIMEOUT,
                               budget if budget is not None else meter.cost,
                               None, self.name, cnf.name)

    # -- internals ---------------------------------------------------------------

    def _try(self, cnf: CNF, meter: CostMeter,
             rng: random.Random) -> Optional[Dict[int, bool]]:
        assignment = {v: rng.random() < 0.5 for v in cnf.variables()}
        # Occurrence lists for incremental unsat-clause tracking.
        clause_sat_count: List[int] = []
        unsat: List[int] = []
        occurrences: Dict[int, List[int]] = {v: [] for v in cnf.variables()}
        for idx, clause in enumerate(cnf.clauses):
            meter.charge()
            satisfied = sum(
                1 for lit in clause if assignment[abs(lit)] == (lit > 0))
            clause_sat_count.append(satisfied)
            if satisfied == 0:
                unsat.append(idx)
            for lit in clause:
                occurrences[abs(lit)].append(idx)

        for _flip in range(self.flips_per_try):
            if not unsat:
                return assignment
            meter.charge()
            clause_idx = rng.choice(unsat)
            clause = cnf.clauses[clause_idx]
            if rng.random() < self.noise:
                var = abs(rng.choice(clause))
            else:
                var = min(
                    (abs(lit) for lit in clause),
                    key=lambda v: self._break_count(
                        cnf, v, assignment, clause_sat_count,
                        occurrences, meter))
            self._flip(cnf, var, assignment, clause_sat_count, occurrences,
                       unsat, meter)
        return None if unsat else assignment

    def _break_count(self, cnf, var, assignment, clause_sat_count,
                     occurrences, meter) -> int:
        """Clauses that would become unsatisfied by flipping ``var``."""
        count = 0
        for idx in occurrences[var]:
            meter.charge()
            clause = cnf.clauses[idx]
            # var currently satisfies the clause iff its literal agrees.
            for lit in clause:
                if abs(lit) == var and assignment[var] == (lit > 0):
                    if clause_sat_count[idx] == 1:
                        count += 1
                    break
        return count

    def _flip(self, cnf, var, assignment, clause_sat_count, occurrences,
              unsat, meter) -> None:
        old = assignment[var]
        assignment[var] = not old
        for idx in occurrences[var]:
            meter.charge()
            clause = cnf.clauses[idx]
            delta = 0
            for lit in clause:
                if abs(lit) == var:
                    was_sat = old == (lit > 0)
                    delta += -1 if was_sat else 1
            before = clause_sat_count[idx]
            clause_sat_count[idx] = before + delta
            if before == 0 and clause_sat_count[idx] > 0:
                unsat.remove(idx)
            elif before > 0 and clause_sat_count[idx] == 0:
                unsat.append(idx)
