"""Deterministic virtual-cost metering for SAT solvers.

Wall-clock time is noisy and machine-dependent; every solver in this
package instead charges a :class:`CostMeter` one unit per primitive
operation (decision, clause visit during propagation, flip, probe).
Costs are therefore exactly reproducible, and "10x speedup" claims are
statements about work, not about the benchmark host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

__all__ = ["BudgetExceeded", "CostMeter", "SolveStatus", "SolveResult"]


class BudgetExceeded(Exception):
    """Raised internally when a solver exhausts its cost budget."""


class CostMeter:
    """Counts virtual work units against an optional budget."""

    def __init__(self, budget: Optional[int] = None):
        self.cost = 0
        self.budget = budget

    def charge(self, units: int = 1) -> None:
        self.cost += units
        if self.budget is not None and self.cost > self.budget:
            raise BudgetExceeded()

    def remaining(self) -> Optional[int]:
        if self.budget is None:
            return None
        return max(0, self.budget - self.cost)


class SolveStatus(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    TIMEOUT = "timeout"   # budget exhausted before an answer


@dataclass
class SolveResult:
    """Outcome of one solver on one instance."""

    status: SolveStatus
    cost: int
    model: Optional[Dict[int, bool]] = None
    solver_name: str = ""
    instance_name: str = ""

    @property
    def solved(self) -> bool:
        return self.status in (SolveStatus.SAT, SolveStatus.UNSAT)
