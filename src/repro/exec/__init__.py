"""repro.exec — pluggable execution backends for the platform.

The coordinator plans each round (all randomness serialized, see
``repro.exec.plan``), a backend executes it (serial, thread, or
process; see ``repro.exec.backends``), and sharded collectors ship
batched traces plus execution-tree edge deltas back for hive ingest
(``repro.exec.batch``, ``repro.exec.shard``). Coordinator state reaches
the shards as epoch-stamped ``publish(SyncDelta)`` calls — the
session-oriented protocol in ``repro.exec.session``. Reports are
bit-identical across backends for a fixed seed; see
``docs/PARALLEL.md``.
"""

from repro.exec.backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
    resolve_backend_name,
    resolve_workers,
)
from repro.exec.batch import (
    BatchAccumulator,
    BatchEntry,
    ReplayProduct,
    RunRecord,
    ShardResult,
    TraceBatch,
    decode_batch,
    encode_batch,
)
from repro.exec.plan import PlannedRun, RoundPlan, partition_runs
from repro.exec.session import (
    SessionLog,
    SyncDelta,
    pack_result,
    pack_runs,
    unpack_result,
    unpack_runs,
)
from repro.exec.shard import Shard

__all__ = [
    "BACKEND_NAMES", "ExecutorBackend",
    "SerialBackend", "ThreadBackend", "ProcessBackend",
    "make_backend", "resolve_backend_name", "resolve_workers",
    "BatchAccumulator", "BatchEntry", "ReplayProduct", "RunRecord",
    "ShardResult", "TraceBatch", "encode_batch", "decode_batch",
    "PlannedRun", "RoundPlan", "partition_runs",
    "SessionLog", "SyncDelta",
    "pack_runs", "unpack_runs", "pack_result", "unpack_result",
    "Shard",
]
