"""Round planning: the coordinator's serialized slice of a round.

Determinism across execution backends hinges on one rule: **every
coordinator-side random draw happens at planning time, in the exact
order the serial loop historically made them**. Planning walks the
round's executions once, sampling the user population, choosing a pod,
popping a steering directive, and (when configured) drawing trace loss
— producing a :class:`RoundPlan` that any backend can execute in any
physical order while each pod still sees its own runs in sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.guidance.steering import SteeringDirective

__all__ = ["PlannedRun", "RoundPlan", "partition_runs"]


@dataclass
class PlannedRun:
    """One execution, fully determined before any pod runs."""

    global_index: int                 # position within the round
    pod_index: int                    # which pod executes it
    inputs: Dict[str, int]
    directive: Optional[SteeringDirective] = None
    ship: bool = True                 # False = trace lost on the wire

    @property
    def guided(self) -> bool:
        return self.directive is not None


@dataclass
class RoundPlan:
    """Everything one round will execute, in global order."""

    round_index: int
    hive_version: int                 # version shards replay against
    runs: List[PlannedRun] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.runs)


def partition_runs(runs: Sequence[PlannedRun],
                   n_shards: int) -> List[List[PlannedRun]]:
    """Split a plan into per-shard run lists.

    Pods map to shards round-robin (``pod_index % n_shards``) so every
    pod belongs to exactly one shard — its runs stay sequential and its
    RNG stream is identical under every backend — and consecutive pod
    ids spread across workers for balance.
    """
    shards: List[List[PlannedRun]] = [[] for _ in range(max(1, n_shards))]
    for run in runs:
        shards[run.pod_index % max(1, n_shards)].append(run)
    return shards
