"""Batched trace shipping: what shards hand the hive each round.

Pods historically shipped one trace per execution. At fleet scale the
per-message overhead dominates, so the executor accumulates traces into
:class:`TraceBatch` objects — each entry a ``tracing.encode`` payload
tagged with its global execution index — and flushes per round (or
every ``batch_max_traces``). A batch optionally carries two shard-side
aggregates so the hive can skip work it would otherwise redo serially:

* ``tree_blob`` — a partial :class:`ExecutionTree` (encoded via
  ``tree.encode``), merged into the hive tree in one deterministic
  step. Shards no longer ship these: since the session-protocol
  redesign the round's tree increment rides ``ShardResult.tree_delta``
  as ``(path, outcome, count)`` edge rows; the blob field remains for
  external senders and is still honoured at ingest;
* per-entry :class:`ReplayProduct` — the decision path and analysis
  by-products the shard already reconstructed by replaying the trace,
  exposing the same attributes the analyzers read off an
  ``ExecutionResult`` (duck-typed: ``lock_events``, ``global_events``,
  ``final_globals``, ``return_values``, ``outcome``).

The wire format (``encode_batch``/``decode_batch``) covers only what
crosses the simulated Internet — indices and trace payloads; products
and trees ride the coordinator/worker channel, which models a hive-side
shard, not a pod uplink.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.obs.trace import SpanContext
from repro.progmodel.interpreter import Outcome
from repro.tracing.dedup import Heartbeat

__all__ = [
    "ReplayProduct", "RunRecord", "BatchEntry", "TraceBatch",
    "ShardResult", "BatchAccumulator",
    "encode_batch", "decode_batch",
]

# v1 had no integrity footer; v2 appends a CRC32 of the body so a
# truncated or corrupted frame is detected at decode time and can be
# discarded instead of ingested (the chaos layer injects exactly that);
# v3 adds an optional trace context (trace id + sender span id) so
# hive-side ingest spans parent under the sender's span. Decode accepts
# v2 and v3 — v2 frames simply carry no context.
_BATCH_FORMAT_VERSION = 3
_MIN_FORMAT_VERSION = 2
_CHECKSUM_BYTES = 4


@dataclass
class ReplayProduct:
    """Shard-side replay by-products, shaped like an ExecutionResult
    for the hive's analyzers (attribute-compatible subset)."""

    program_version: int
    outcome: Outcome
    path_decisions: Tuple = ()
    lock_events: Tuple = ()
    global_events: Tuple = ()
    final_globals: Dict[str, Optional[int]] = field(default_factory=dict)
    return_values: Dict[int, Optional[int]] = field(default_factory=dict)


@dataclass
class RunRecord:
    """The report-facing summary of one executed run."""

    global_index: int
    guided: bool
    failed: bool
    outcome: Outcome
    has_failure: bool = False
    failure_message: Optional[str] = None
    failure_block: Optional[str] = None


@dataclass
class BatchEntry:
    """One shipped item: a full trace payload or a dedup heartbeat."""

    global_index: int
    payload: bytes = b""
    heartbeat: Optional[Heartbeat] = None
    product: Optional[ReplayProduct] = None

    @property
    def is_heartbeat(self) -> bool:
        return self.heartbeat is not None


@dataclass
class TraceBatch:
    """One shard's flush: entries in global-index order."""

    shard_id: int
    program_name: str
    program_version: int              # hive version shards replayed on
    sequence: int = 0                 # flush number within the round
    entries: List[BatchEntry] = field(default_factory=list)
    tree_blob: Optional[bytes] = None
    #: Sender-side trace context (rides the wire in format v3) so the
    #: receiver's ingest span can parent under the sender's span.
    trace_context: Optional[SpanContext] = None

    def __len__(self) -> int:
        return len(self.entries)

    def wire_size(self) -> int:
        """Bytes this batch puts on the (simulated) pod uplink."""
        return len(encode_batch(self))


@dataclass
class ShardResult:
    """Everything one shard produced for one round."""

    shard_id: int
    records: List[RunRecord] = field(default_factory=list)
    batches: List[TraceBatch] = field(default_factory=list)
    busy_seconds: float = 0.0
    #: Worker-side trace spans (``repro.obs.trace``), shipped back
    #: alongside the counter deltas and grafted into the coordinator's
    #: trace log; empty when tracing is disabled.
    spans: List = field(default_factory=list)
    #: Constraint-cache facts this shard originated this round
    #: (``repro.symbolic.cache``): content-keyed ``(key, entry)`` pairs,
    #: picklable, merged hive-side in canonical order. Rides the
    #: coordinator channel like spans/counters — the pod uplink wire
    #: format is untouched.
    cache_delta: List = field(default_factory=list)
    #: Hive program version the shard replayed against this round; the
    #: hive applies ``tree_delta`` only when it still matches.
    tree_version: int = -1
    #: Incremental execution-tree edges: ``(path_decisions, outcome,
    #: count)`` rows aggregated over the round's replays, in first-seen
    #: order. Replaces the per-round partial-tree blob on the
    #: coordinator channel — the hive folds the rows with counted
    #: inserts, which is both smaller on the pipe and cheaper to merge.
    tree_delta: List[Tuple] = field(default_factory=list)


# -- wire encoding ------------------------------------------------------------

# Encode buffers are pooled: a flush-heavy round encodes thousands of
# frames, and reusing a grown bytearray skips both the allocation and
# the progressive reallocation as the frame fills. list.pop/append are
# atomic under the GIL, so the thread backend's shards share the pool
# safely; a miss just allocates.
_BUFFER_POOL: List[bytearray] = []
_BUFFER_POOL_MAX = 8


def _acquire_buffer() -> bytearray:
    try:
        return _BUFFER_POOL.pop()
    except IndexError:
        return bytearray()


def _release_buffer(buf: bytearray) -> None:
    del buf[:]
    if len(_BUFFER_POOL) < _BUFFER_POOL_MAX:
        _BUFFER_POOL.append(buf)


def _write_varint(out: bytearray, value: int) -> None:
    if 0 <= value < 0x80:          # single-byte fast path (the common case)
        out.append(value)
        return
    if value < 0:
        raise TraceError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class _Reader:
    """Varint-framed reader over ``bytes`` or a ``memoryview``.

    With a memoryview input, :meth:`blob` materializes each payload
    with exactly one copy out of the received buffer — no intermediate
    whole-body slice — which is how the coordinator decodes frames the
    workers encoded once.
    """

    def __init__(self, data):
        self._data = data
        self._len = len(data)
        self._pos = 0

    def varint(self) -> int:
        data = self._data
        pos = self._pos
        if pos < self._len:
            byte = data[pos]
            if not byte & 0x80:        # single-byte fast path
                self._pos = pos + 1
                return byte
        shift = 0
        value = 0
        while True:
            if pos >= self._len:
                raise TraceError("truncated batch varint")
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self._pos = pos
                return value
            shift += 7

    def blob(self) -> bytes:
        length = self.varint()
        if self._pos + length > self._len:
            raise TraceError("truncated batch payload")
        chunk = self._data[self._pos:self._pos + length]
        self._pos += length
        return bytes(chunk)

    def string(self) -> str:
        return self.blob().decode("utf-8")

    def done(self) -> bool:
        return self._pos == self._len


def encode_batch(batch: TraceBatch) -> bytes:
    """Serialize the wire-visible part of a batch (indices + trace
    payloads + heartbeat digests); shard aggregates stay off the pod
    uplink. The frame ends with a CRC32 of everything before it.

    Single pass into a pooled ``bytearray``: varints are emitted
    directly (one-byte fast path), the CRC is computed over the buffer
    without an intermediate copy, and the footer lands via
    ``struct.pack_into`` — the only whole-frame copy left is the final
    immutable ``bytes`` the caller keeps.
    """
    out = _acquire_buffer()
    try:
        _write_varint(out, _BATCH_FORMAT_VERSION)
        name = batch.program_name.encode("utf-8")
        _write_varint(out, len(name))
        out += name
        _write_varint(out, batch.program_version)
        _write_varint(out, batch.shard_id)
        _write_varint(out, batch.sequence)
        context = batch.trace_context
        if context is None:
            out.append(0)
        else:
            out.append(1)
            for part in (context.trace_id, context.span_id):
                blob = part.encode("utf-8")
                _write_varint(out, len(blob))
                out += blob
        _write_varint(out, len(batch.entries))
        for entry in batch.entries:
            _write_varint(out, entry.global_index)
            heartbeat = entry.heartbeat
            if heartbeat is not None:
                out.append(1)
                _write_varint(out, len(heartbeat.digest))
                out += heartbeat.digest
                _write_varint(out, heartbeat.count)
            else:
                payload = entry.payload
                out.append(0)
                _write_varint(out, len(payload))
                out += payload
        crc = zlib.crc32(out) & 0xFFFFFFFF
        body_len = len(out)
        out += b"\x00\x00\x00\x00"
        struct.pack_into(">I", out, body_len, crc)
        return bytes(out)
    finally:
        _release_buffer(out)


def decode_batch(data) -> TraceBatch:
    """Inverse of :func:`encode_batch` (products/trees do not survive
    the wire — the receiver replays, as the paper prescribes).

    Accepts ``bytes`` or a ``memoryview``: receivers decode frames
    zero-copy over the buffer they arrived in, materializing only the
    per-entry payloads (see docs/PARALLEL.md, "wire format versions").

    The CRC32 footer is verified *first*: a partial flush or a frame
    mangled in transit raises :class:`~repro.errors.TraceError` before
    any entry is decoded, so callers discard it whole.
    """
    if len(data) <= _CHECKSUM_BYTES:
        raise TraceError("batch too short to carry a checksum")
    view = data if isinstance(data, memoryview) else memoryview(data)
    body, footer = view[:-_CHECKSUM_BYTES], view[-_CHECKSUM_BYTES:]
    if (zlib.crc32(body) & 0xFFFFFFFF) != int.from_bytes(footer, "big"):
        raise TraceError("batch checksum mismatch")
    reader = _Reader(body)
    version = reader.varint()
    if not _MIN_FORMAT_VERSION <= version <= _BATCH_FORMAT_VERSION:
        raise TraceError(f"unsupported batch format version {version}")
    program_name = reader.string()
    program_version = reader.varint()
    shard_id = reader.varint()
    sequence = reader.varint()
    trace_context = None
    if version >= 3 and reader.varint() == 1:
        trace_context = SpanContext(reader.string(), reader.string())
    entries: List[BatchEntry] = []
    for _ in range(reader.varint()):
        global_index = reader.varint()
        if reader.varint() == 1:
            digest = reader.blob()
            count = reader.varint()
            entries.append(BatchEntry(
                global_index=global_index,
                heartbeat=Heartbeat(
                    program_name=program_name,
                    program_version=program_version,
                    digest=digest, count=count)))
        else:
            entries.append(BatchEntry(global_index=global_index,
                                      payload=reader.blob()))
    if not reader.done():
        raise TraceError("trailing bytes after batch")
    return TraceBatch(shard_id=shard_id, program_name=program_name,
                      program_version=program_version, sequence=sequence,
                      entries=entries, trace_context=trace_context)


class BatchAccumulator:
    """A :class:`~repro.interfaces.TraceSource`: buffers traces and
    releases :class:`TraceBatch` flushes.

    ``max_traces`` caps entries per batch (0 = unbounded, one batch per
    drain); used by networked pods to trade uplink messages for
    ingestion latency and by shard collectors for intra-round flushes.
    """

    def __init__(self, shard_id: int, program_name: str,
                 program_version: int, max_traces: int = 0):
        self.shard_id = shard_id
        self.program_name = program_name
        self.program_version = program_version
        self.max_traces = max_traces
        self._sequence = 0
        self._flushed: List[TraceBatch] = []
        self._open: List[BatchEntry] = []

    def _roll(self) -> None:
        self._flushed.append(TraceBatch(
            shard_id=self.shard_id, program_name=self.program_name,
            program_version=self.program_version, sequence=self._sequence,
            entries=self._open))
        self._sequence += 1
        self._open = []

    def add(self, entry: BatchEntry) -> None:
        self._open.append(entry)
        if self.max_traces and len(self._open) >= self.max_traces:
            self._roll()

    def pending(self) -> int:
        return (sum(len(batch) for batch in self._flushed)
                + len(self._open))

    def take_full(self) -> Sequence[TraceBatch]:
        """Hand over only the batches that already rolled (reached
        ``max_traces``), leaving the open batch buffering — the
        steady-state shipping path for networked pods."""
        batches, self._flushed = self._flushed, []
        return batches

    def drain_batches(self) -> Sequence[TraceBatch]:
        if self._open:
            self._roll()
        batches, self._flushed = self._flushed, []
        return batches
