"""The session-oriented executor protocol: epochs, deltas, and the
compact wire the process backend speaks.

The redesign replaces the push-style mutator trio
(``set_hive_program`` / ``apply_update`` / ``seed_cache``) with one
idea: an executor backend hosts a *session*. Full state crosses the
process boundary exactly once — when a worker (re)spawns — and only
**deltas** cross afterwards:

* coordinator → worker: :class:`SyncDelta`, stamped with a monotonic
  **epoch** by ``publish()``. A delta carries any combination of a new
  hive program, a staged rollout, and constraint-cache facts. The
  backend keeps the cumulative :class:`SessionLog`; a worker respawned
  after a crash replays the log and rejoins at the current epoch.
* worker → coordinator: a packed :class:`~repro.exec.batch.ShardResult`
  (:func:`pack_result` / :func:`unpack_result`): run records as flat
  rows over an interned outcome table, replay products deduplicated
  into a content-keyed table (a round usually explores a handful of
  distinct paths across thousands of runs), execution-tree *edge
  deltas* ``(path, outcome, count)`` instead of partial-tree blobs,
  and trace payloads as raw bytes encoded once on the worker.

Profiling note (ROADMAP open item 1): on the 40-pod E18 workload the
per-object pickle of dataclass results cost ~16 ms per round — ~13% of
the round — while the packed form costs ~1 ms. That difference is the
whole reason the process backend wins on this host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.batch import (
    BatchEntry, ReplayProduct, RunRecord, ShardResult, TraceBatch,
)
from repro.exec.plan import PlannedRun
from repro.progmodel.interpreter import Outcome
from repro.progmodel.ir import Program

__all__ = [
    "SyncDelta", "SessionLog",
    "pack_runs", "unpack_runs", "pack_result", "unpack_result",
]


@dataclass
class SyncDelta:
    """One coordinator-side state change, published to every shard.

    ``epoch`` is 0 when handed to ``publish()``; the backend stamps the
    session's next epoch before applying/broadcasting. Fields are
    orthogonal and may be combined in one publish (one epoch):

    * ``hive_program`` — the hive deployed a fix; shards replay future
      traces against it.
    * ``rollout`` — ``(program, pod_indices)``: staged rollout onto the
      named pods (version-guarded at the pod, like always).
    * ``cache_entries`` — content-keyed constraint-cache facts
      (``repro.symbolic.cache`` delta) redistributed to every shard.
    """

    epoch: int = 0
    hive_program: Optional[Program] = None
    rollout: Optional[Tuple[Program, Tuple[int, ...]]] = None
    cache_entries: Sequence = ()

    def is_empty(self) -> bool:
        return (self.hive_program is None and self.rollout is None
                and not self.cache_entries)


class SessionLog:
    """The cumulative session state a fresh worker must replay.

    Program events (hive deploys, staged rollouts) are kept as an
    ordered log — replaying them reproduces every pod's exact program
    version, not just the hive's current one. Cache facts are
    content-keyed and first-writer-wins, so they compact into one dict
    instead of growing with the log.
    """

    def __init__(self) -> None:
        self.epoch = 0
        #: Ordered program events: ("hive", blob) | ("rollout", blob,
        #: indices). Encoded once at publish; replayed verbatim on
        #: (re)spawn.
        self.program_events: List[tuple] = []
        #: Compacted cache facts: key -> entry, first writer wins
        #: (mirrors ConstraintCache.merge semantics).
        self.cache_entries: Dict = {}

    def record(self, delta: SyncDelta, *,
               hive_blob: Optional[bytes] = None,
               rollout_blob: Optional[bytes] = None) -> tuple:
        """Fold a stamped delta into the log; returns the packed
        broadcast message payload ``(epoch, hive_blob, rollout, cache)``
        the process backend sends to live workers."""
        self.epoch = delta.epoch
        rollout = None
        if delta.hive_program is not None:
            self.program_events.append(("hive", hive_blob))
        if delta.rollout is not None:
            _program, indices = delta.rollout
            rollout = (rollout_blob, tuple(indices))
            self.program_events.append(("rollout",) + rollout)
        cache = list(delta.cache_entries)
        for key, entry in cache:
            self.cache_entries.setdefault(key, entry)
        return (delta.epoch, hive_blob, rollout, cache)

    def snapshot(self) -> tuple:
        """Everything a (re)spawning worker needs to rejoin at the
        current epoch: ``(epoch, program_events, cache_items)``."""
        return (self.epoch, list(self.program_events),
                list(self.cache_entries.items()))


# -- plan packing --------------------------------------------------------------
#
# A round plan repeats a small set of input dicts over thousands of
# runs (the population is finite); interning them turns the plan pickle
# into a table + index rows. Directives are rare (guidance only) and
# ride in a sparse side table.

def pack_runs(runs: Sequence[PlannedRun]) -> tuple:
    inputs_table: List[Dict[str, int]] = []
    inputs_index: Dict[tuple, int] = {}
    rows: List[tuple] = []
    directives: Dict[int, object] = {}
    for run in runs:
        key = tuple(sorted(run.inputs.items()))
        slot = inputs_index.get(key)
        if slot is None:
            slot = inputs_index[key] = len(inputs_table)
            inputs_table.append(run.inputs)
        rows.append((run.global_index, run.pod_index, slot, run.ship))
        if run.directive is not None:
            directives[run.global_index] = run.directive
    return (inputs_table, rows, directives)


def unpack_runs(packed: tuple) -> List[PlannedRun]:
    inputs_table, rows, directives = packed
    return [
        PlannedRun(global_index=gi, pod_index=pod, inputs=inputs_table[slot],
                   directive=directives.get(gi), ship=ship)
        for gi, pod, slot, ship in rows
    ]


# -- result packing ------------------------------------------------------------

def _intern(table: List, index: Dict, key, value) -> int:
    slot = index.get(key)
    if slot is None:
        slot = index[key] = len(table)
        table.append(value)
    return slot


def pack_result(result: ShardResult) -> tuple:
    """Flatten a ShardResult for the coordinator pipe.

    Outcomes intern into a value table; replay products intern by
    content (path + version + outcome identify a product for a
    deterministic interpreter); record failure details ship sparsely.
    Trace payload bytes pass through untouched — they were encoded once
    on the worker and the coordinator decodes them lazily.
    """
    outcomes: List[str] = []
    outcome_index: Dict[str, int] = {}
    record_rows: List[tuple] = []
    failures: Dict[int, tuple] = {}
    for rec in result.records:
        slot = _intern(outcomes, outcome_index, rec.outcome.value,
                       rec.outcome.value)
        flags = (rec.guided | (rec.failed << 1) | (rec.has_failure << 2))
        record_rows.append((rec.global_index, flags, slot))
        if rec.failure_message is not None or rec.failure_block is not None:
            failures[rec.global_index] = (rec.failure_message,
                                          rec.failure_block)

    products: List[ReplayProduct] = []
    product_index: Dict[tuple, int] = {}
    batch_rows: List[tuple] = []
    for batch in result.batches:
        entry_rows: List[tuple] = []
        for entry in batch.entries:
            if entry.heartbeat is not None:
                entry_rows.append((entry.global_index, None,
                                   entry.heartbeat, -1))
                continue
            slot = -1
            product = entry.product
            if product is not None:
                key = (product.program_version, product.outcome.value,
                       product.path_decisions)
                slot = _intern(products, product_index, key, product)
            entry_rows.append((entry.global_index, entry.payload,
                               None, slot))
        batch_rows.append((batch.sequence, batch.program_name,
                           batch.program_version, batch.trace_context,
                           entry_rows))

    return (
        result.shard_id,
        (outcomes, record_rows, failures),
        (products, batch_rows),
        result.tree_version,
        list(result.tree_delta),
        result.busy_seconds,
        result.spans,
        result.cache_delta,
    )


def unpack_result(packed: tuple) -> ShardResult:
    (shard_id, (outcomes, record_rows, failures),
     (products, batch_rows), tree_version, tree_delta,
     busy_seconds, spans, cache_delta) = packed
    outcome_table = [Outcome(value) for value in outcomes]
    records: List[RunRecord] = []
    for gi, flags, slot in record_rows:
        message, block = failures.get(gi, (None, None))
        records.append(RunRecord(
            global_index=gi,
            guided=bool(flags & 1),
            failed=bool(flags & 2),
            outcome=outcome_table[slot],
            has_failure=bool(flags & 4),
            failure_message=message,
            failure_block=block,
        ))
    batches: List[TraceBatch] = []
    for sequence, name, version, context, entry_rows in batch_rows:
        entries = [
            BatchEntry(global_index=gi, payload=payload or b"",
                       heartbeat=heartbeat,
                       product=products[slot] if slot >= 0 else None)
            for gi, payload, heartbeat, slot in entry_rows
        ]
        batches.append(TraceBatch(
            shard_id=shard_id, program_name=name, program_version=version,
            sequence=sequence, entries=entries, trace_context=context))
    return ShardResult(
        shard_id=shard_id, records=records, batches=batches,
        busy_seconds=busy_seconds, spans=spans, cache_delta=cache_delta,
        tree_version=tree_version, tree_delta=tree_delta,
    )
