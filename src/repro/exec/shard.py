"""The shard: a slice of the fleet plus its local hive-side collector.

One :class:`Shard` owns a fixed subset of pods and mirrors, locally,
the hive-side work that used to be serial: it executes its planned
runs, deduplicates per pod, replays replayable version-current traces
into execution-tree *edge deltas* (``(path, outcome, count)`` rows in
``ShardResult.tree_delta``), and packages everything into
:class:`TraceBatch` flushes with per-entry :class:`ReplayProduct`
aggregates. The same class backs all three executor backends — inline
(serial), one-per-thread, and one-per-worker-process — which is what
makes backend choice invisible to results.

Determinism contract: a shard processes its runs in global-index order,
so each pod's RNG stream and dedup state advance exactly as under the
historical serial loop; the replay it performs is the same
``Interpreter.replay`` the hive would have run, against the same
program version.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.errors import TraceError
from repro.exec.batch import (
    BatchAccumulator, BatchEntry, ReplayProduct, RunRecord, ShardResult,
)
from repro.exec.plan import PlannedRun
from repro.obs.trace import NULL_SPAN, SpanContext, get_tracer
from repro.pod.pod import Pod
from repro.progmodel.interpreter import (
    ExecutionLimits, Interpreter, Outcome, ReplaySource,
)
from repro.progmodel.ir import Program
from repro.tracing.dedup import PodDeduplicator
from repro.tracing.encode import encode_trace
from repro.tracing.trace import Trace

__all__ = ["Shard"]


class Shard:
    """A pod subset plus the shard-local trace collector."""

    def __init__(self, shard_id: int, pods: Dict[int, Pod],
                 hive_program: Program,
                 limits: Optional[ExecutionLimits] = None,
                 dedup: bool = False,
                 batch_max_traces: int = 0,
                 collect_tree: bool = True,
                 solver_cache=None,
                 replay_products: bool = True):
        self.shard_id = shard_id
        self.pods = pods                       # global pod index -> Pod
        self.hive_program = hive_program       # what the hive replays on
        self.limits = limits or ExecutionLimits()
        self.batch_max_traces = batch_max_traces
        self.collect_tree = collect_tree
        # Service mode turns shard-side replay off: products never
        # survive the pump's re-framed wire, so building them is pure
        # waste there — unless collective recycling mines them.
        self.replay_products = replay_products
        # Collective constraint recycling: a private ConstraintCache the
        # shard fills with SAT facts mined from its replayed traces (a
        # concrete run *is* a model of its own path condition). Private
        # per shard — no cross-thread mutation — with the round delta
        # shipped back in ShardResult for the hive's canonical merge.
        self.solver_cache = solver_cache
        self._recycle_engine = None
        self._recycled_paths = set()
        # Resolved once, like the metric handles; a disabled tracer
        # hands out a shared no-op recorder so the hot loop stays flat.
        self._tracer = get_tracer()
        self._dedup: Dict[str, PodDeduplicator] = {}
        if dedup:
            self._dedup = {pod.pod_id: PodDeduplicator()
                           for pod in pods.values()}

    # -- lifecycle ------------------------------------------------------------

    def set_hive_program(self, program: Program) -> None:
        """The hive deployed a fix: future replays target ``program``."""
        self.hive_program = program
        self._recycle_engine = None
        self._recycled_paths.clear()

    def merge_cache(self, delta) -> None:
        """Adopt hive-redistributed cache facts (round start)."""
        if self.solver_cache is not None:
            self.solver_cache.merge(delta)

    def apply_update(self, program: Program,
                     pod_indices: Sequence[int]) -> None:
        """Staged rollout: install ``program`` on the named pods."""
        for index in pod_indices:
            pod = self.pods.get(index)
            if pod is not None:
                pod.apply_update(program)

    def apply_sync(self, delta) -> None:
        """Apply one epoch-stamped :class:`~repro.exec.session.SyncDelta`
        — the session protocol's single state-change entry point. Order
        matters: a combined publish deploys the hive program before the
        rollout that targets it."""
        if delta.hive_program is not None:
            self.set_hive_program(delta.hive_program)
        if delta.rollout is not None:
            program, indices = delta.rollout
            self.apply_update(program, indices)
        if delta.cache_entries:
            self.merge_cache(list(delta.cache_entries))

    # -- the round ------------------------------------------------------------

    def run_shard(self, runs: Sequence[PlannedRun],
                  ctx: Optional[SpanContext] = None) -> ShardResult:
        """Execute this shard's slice of the round plan, in order.

        ``ctx`` is the coordinator's active span context; worker-side
        spans recorded under it ride back inside the result and are
        grafted into the coordinator's trace log. Span keys are
        backend-invariant coordinates (the global execution index), so
        the assembled tree is identical on every backend.
        """
        started = time.perf_counter()
        recorder = self._tracer.recorder(ctx)
        # Lazy span shipping: with tracing off the recorder is the
        # shared no-op and ``tracing`` gates every span call site, so
        # the hot loop allocates no span handles, no kwargs dicts, and
        # the result carries an empty tuple across the worker pipe.
        tracing = recorder.enabled
        accumulator = BatchAccumulator(
            self.shard_id, self.hive_program.name,
            self.hive_program.version, max_traces=self.batch_max_traces)
        # Tree evidence accumulates as (path, outcome) -> count edge
        # rows, not as an ExecutionTree: the delta is what crosses the
        # worker pipe, and counted-insert merging hive-side reproduces
        # the exact tree the old partial-tree blobs built.
        edges: Dict = {} if self.collect_tree else None
        records: List[RunRecord] = []
        for planned in runs:
            pod = self.pods[planned.pod_index]
            span = recorder.span("pod.run", key=planned.global_index,
                                 pod=planned.pod_index,
                                 guided=planned.guided) \
                if tracing else NULL_SPAN
            with span:
                try:
                    run = pod.execute(planned.inputs,
                                      directive=planned.directive)
                except Exception as error:
                    # One broken execution must not take the whole shard
                    # (and, for the process backend, the whole worker)
                    # down with it: record the crash, ship nothing,
                    # move on.
                    from repro.obs import get_registry
                    get_registry().counter("exec.run_crashes").inc()
                    if tracing:
                        span.set(outcome="crash", shipped=False)
                    records.append(RunRecord(
                        global_index=planned.global_index,
                        guided=planned.guided,
                        failed=True,
                        outcome=Outcome.CRASH,
                        has_failure=True,
                        failure_message=f"pod execution raised: {error}",
                        failure_block=None,
                    ))
                    continue
                trace = run.trace
                failure = run.result.failure
                if tracing:
                    span.set(outcome=run.result.outcome.value,
                             shipped=planned.ship)
                records.append(RunRecord(
                    global_index=planned.global_index,
                    guided=planned.guided,
                    failed=run.result.outcome.is_failure,
                    outcome=run.result.outcome,
                    has_failure=failure is not None,
                    failure_message=failure.message if failure else None,
                    failure_block=failure.block if failure else None,
                ))
                if not planned.ship:
                    continue                   # lost on the wire
                entry = self._collect(planned.global_index, trace, edges,
                                      recorder, tracing)
                if entry is not None:
                    accumulator.add(entry)
                    if entry.product is not None:
                        self._recycle(entry.product.path_decisions,
                                      planned.inputs, recorder,
                                      planned.global_index)
        batches = list(accumulator.drain_batches())
        return ShardResult(
            shard_id=self.shard_id,
            records=records,
            batches=batches,
            busy_seconds=time.perf_counter() - started,
            spans=recorder.take(),
            cache_delta=(self.solver_cache.export_delta()
                         if self.solver_cache is not None else []),
            tree_version=self.hive_program.version,
            tree_delta=[(path, outcome, count)
                        for (path, outcome), count in edges.items()]
            if edges else [],
        )

    # -- constraint recycling --------------------------------------------------

    def _recycle(self, decisions, inputs, recorder, global_index) -> None:
        """Mine a replayed run for solver facts (no solving happens).

        Each distinct decision path is walked once per program version;
        repeats — the common case inside a round — are skipped by the
        seen-set, so recycling cost is bounded by path diversity, not
        run count.
        """
        if self.solver_cache is None or not decisions:
            return
        if decisions in self._recycled_paths:
            return
        self._recycled_paths.add(decisions)
        if self._recycle_engine is None:
            from repro.symbolic.engine import SymbolicEngine
            self._recycle_engine = SymbolicEngine(
                self.hive_program, cache=self.solver_cache)
        with recorder.span("cache.recycle", key=global_index) as span:
            banked = self._recycle_engine.recycle_witness(decisions, inputs)
            span.set(banked=banked)

    # -- collection -----------------------------------------------------------

    def _collect(self, global_index: int, trace: Trace,
                 edges: Optional[Dict],
                 recorder, tracing: bool = True) -> Optional[BatchEntry]:
        if self._dedup:
            shipped, heartbeat = self._dedup[trace.pod_id].submit(trace)
            if shipped is None:
                return BatchEntry(global_index=global_index,
                                  heartbeat=heartbeat)
            trace = shipped
        if tracing:
            with recorder.span("wire.encode", key=global_index) as span:
                payload = encode_trace(trace)
                span.set(bytes=len(payload))
        else:
            payload = encode_trace(trace)
        entry = BatchEntry(global_index=global_index, payload=payload)
        if self.replay_products:
            entry.product = self._replay(trace, edges)
        return entry

    def _replay(self, trace: Trace,
                edges: Optional[Dict]) -> Optional[ReplayProduct]:
        """The hive's replay, done shard-locally.

        Only replayable traces for the hive's current version qualify;
        everything else (stale, sampled, truncated, corrupt) returns
        ``None`` and the hive handles the entry itself on the fallback
        path — same code, same order, any backend.
        """
        if not trace.replayable:
            return None
        if trace.program_version != self.hive_program.version:
            return None                        # stale: hive just counts it
        try:
            result = Interpreter(
                self.hive_program, limits=self.limits).replay(
                ReplaySource(
                    branch_bits=list(trace.branch_bits),
                    syscall_returns=list(trace.syscall_returns),
                    schedule_picks=list(trace.schedule_picks()),
                ))
        except TraceError:
            return None                        # hive will count the failure
        if edges is not None:
            key = (tuple(result.path_decisions), result.outcome)
            edges[key] = edges.get(key, 0) + 1
        return ReplayProduct(
            program_version=trace.program_version,
            outcome=result.outcome,
            path_decisions=tuple(result.path_decisions),
            lock_events=tuple(result.lock_events),
            global_events=tuple(result.global_events),
            final_globals=dict(result.final_globals),
            return_values=dict(result.return_values),
        )
