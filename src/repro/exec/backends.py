"""Execution backends: how a round's planned runs actually execute.

The platform plans a round (all coordinator randomness, serialized),
hands the plan to an :class:`ExecutorBackend`, and gets back per-shard
:class:`ShardResult` lists. Three implementations:

* :class:`SerialBackend` — one in-process shard over every pod; the
  historical behaviour and the default.
* :class:`ThreadBackend` — pods partitioned into per-thread shards.
  Python threads only overlap during I/O or C-level work, so this
  backend is mostly a stepping stone / GIL-contention testbed; results
  are still bit-identical.
* :class:`ProcessBackend` — pods partitioned across long-lived worker
  processes (one :class:`~repro.exec.shard.Shard` each), speaking the
  **session protocol** (``repro.exec.session``): full state crosses
  the pipe once at spawn, then only deltas — packed plans out, packed
  delta-shaped results back, epoch-stamped ``publish()`` broadcasts in
  between. This is the backend that buys wall-clock.

Every backend is a context manager (``with make_backend(...) as b:``)
whose exit calls the idempotent :meth:`close`, and every backend feeds
``repro.obs``: round execute latency, batch count/size/bytes, per-shard
busy seconds, and worker utilization (busy / round wall-clock, the
parallel-efficiency signal).

Coordinator-side state changes go through one door:
:meth:`publish` takes a :class:`~repro.exec.session.SyncDelta` (hive
program deploy, staged rollout, constraint-cache facts — any
combination), stamps it with the session's next epoch, and applies it
to every shard. The legacy mutator trio (``set_hive_program`` /
``apply_update`` / ``seed_cache``) remains as deprecated aliases only
(removal per docs/API.md policy).

Backend choice is config- or environment-driven (``REPRO_BACKEND``);
``resolve_backend_name`` centralizes the rule.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

try:  # pragma: no cover
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from repro.errors import ConfigError
from repro.exec.batch import ShardResult
from repro.exec.plan import PlannedRun, RoundPlan, partition_runs
from repro.exec.session import (
    SessionLog, SyncDelta, pack_runs, pack_result, unpack_result,
    unpack_runs,
)
from repro.exec.shard import Shard
from repro.interfaces import deprecated_alias
from repro.obs import Instrumented
from repro.obs.trace import get_tracer
from repro.pod.pod import Pod
from repro.progmodel.interpreter import ExecutionLimits
from repro.progmodel.ir import Program

__all__ = [
    "BACKEND_NAMES", "ExecutorBackend", "SyncDelta",
    "SerialBackend", "ThreadBackend", "ProcessBackend",
    "make_backend", "resolve_backend_name", "resolve_workers",
]

BACKEND_NAMES = ("serial", "thread", "process")

_ENV_BACKEND = "REPRO_BACKEND"

#: Release that deletes the legacy mutator trio (docs/API.md policy).
_LEGACY_MUTATOR_REMOVAL = "v0.3"


def resolve_backend_name(name: str) -> str:
    """Map a config value to a concrete backend name.

    ``"auto"`` defers to the ``REPRO_BACKEND`` environment variable
    (the CI matrix leg sets it to ``process`` to run the whole suite
    through the parallel path), defaulting to ``serial``.
    """
    if name == "auto":
        name = os.environ.get(_ENV_BACKEND, "").strip().lower() or "serial"
    if name not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown backend {name!r}; expected one of"
            f" {', '.join(BACKEND_NAMES)} or 'auto'")
    return name


def resolve_workers(workers: int, backend: str, n_pods: int) -> int:
    """0 = auto: one worker per core (``os.cpu_count()``), capped at
    the pod count (a shard with no pods would just idle). The same rule
    applies on every CLI that takes ``--workers`` (run/chaos/serve)."""
    if backend == "serial":
        return 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, n_pods))


class ExecutorBackend(Protocol):
    """What the platform requires of an execution backend.

    The session protocol in four verbs: ``run_round`` executes a plan,
    ``publish`` applies an epoch-stamped state delta to every shard,
    ``close`` releases workers (idempotent), and the context-manager
    pair scopes the whole session.
    """

    name: str
    workers: int
    epoch: int

    def run_round(self, plan: RoundPlan) -> List[ShardResult]:
        """Execute the plan; shard results ordered by shard id."""

    def run_rounds(self, plans: Sequence[RoundPlan],
                   ctxs: Optional[Sequence] = None,
                   ) -> List[List[ShardResult]]:
        """Execute K plans in one backend transaction; one shard-result
        list per round, in plan order."""

    def publish(self, delta: SyncDelta) -> int:
        """Apply a state delta to every shard; returns the stamped
        epoch. A worker (re)spawned later replays the cumulative
        session state before serving its first round."""

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "ExecutorBackend":
        ...

    def __exit__(self, *exc_info) -> None:
        ...


class _BackendBase(Instrumented):
    """Shared observability + session lifecycle for every backend."""

    obs_namespace = "exec"
    name = "abstract"

    def __init__(self, workers: int):
        self.workers = workers
        #: Monotonic session epoch: bumped by every (non-empty)
        #: publish. A pure function of the round plan, so it is
        #: backend-invariant and may appear in snapshots.
        self._epoch = 0
        self._tracer = get_tracer()
        self._obs_rounds = self.obs_counter("rounds")
        self._obs_publishes = self.obs_counter("publishes")
        self._obs_batches = self.obs_counter("batches")
        self._obs_traces = self.obs_counter("batched_traces")
        self._obs_round_time = self.obs_timer("round_execute")
        self._obs_batch_traces = self.obs_histogram("batch_traces",
                                                    unit="traces")
        self._obs_batch_bytes = self.obs_histogram("batch_bytes",
                                                   unit="bytes")
        # Wall-clock-derived distributions register as timers: the
        # snapshot contract is that histogram values reproduce exactly
        # under a fixed seed while timers may vary run to run.
        self._obs_busy = self.obs_timer("worker_busy")
        self._obs_utilization = self.obs_timer("worker_utilization")
        self.obs_gauge("workers").set(workers)

    @property
    def epoch(self) -> int:
        return self._epoch

    # -- session lifecycle ----------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def publish(self, delta: SyncDelta) -> int:
        """Stamp ``delta`` with the next session epoch and apply it."""
        if delta.is_empty():
            return self._epoch
        self._epoch += 1
        delta.epoch = self._epoch
        self._obs_publishes.inc()
        self._publish(delta)
        return self._epoch

    def _publish(self, delta: SyncDelta) -> None:
        raise NotImplementedError

    # -- deprecated push-style mutators (aliases of publish) ------------------

    @deprecated_alias("publish", removal_version=_LEGACY_MUTATOR_REMOVAL)
    def set_hive_program(self, program: Program) -> None:
        self.publish(SyncDelta(hive_program=program))

    @deprecated_alias("publish", removal_version=_LEGACY_MUTATOR_REMOVAL)
    def apply_update(self, program: Program,
                     pod_indices: Sequence[int]) -> None:
        self.publish(SyncDelta(rollout=(program, tuple(pod_indices))))

    @deprecated_alias("publish", removal_version=_LEGACY_MUTATOR_REMOVAL)
    def seed_cache(self, delta) -> None:
        self.publish(SyncDelta(cache_entries=list(delta or ())))

    # -- rounds ---------------------------------------------------------------

    def run_round(self, plan: RoundPlan) -> List[ShardResult]:
        import time
        started = time.perf_counter()
        # Shards record their spans into per-shard recorders rooted at
        # the coordinator's active span; the results carry them back
        # (across the worker pipe, for the process backend) and they
        # graft into one tree here.
        ctx = self._tracer.current_context()
        with self._obs_round_time.time():
            results = self._run_round(plan, ctx)
        wall = max(time.perf_counter() - started, 1e-9)
        self._account_round(results, wall)
        return results

    def run_rounds(self, plans: Sequence[RoundPlan],
                   ctxs: Optional[Sequence] = None,
                   ) -> List[List[ShardResult]]:
        """Execute K planned rounds in one backend transaction.

        ``ctxs`` carries one parent span context per round (the
        coordinator pre-derives them — span ids are content-derived, so
        the grafted tree is identical to K separate ``run_round``
        calls). Rounds execute strictly in order on each shard, so pod
        RNG streams and dedup state advance exactly as they would one
        round at a time; only the pipe round-trips collapse. Counter
        accounting matches K single rounds; the round-execute timer
        observes the window once (timers are exempt from the
        determinism contract).
        """
        import time
        if ctxs is None:
            ctxs = [None] * len(plans)
        started = time.perf_counter()
        with self._obs_round_time.time():
            per_round = self._run_rounds(list(plans), list(ctxs))
        wall = max(time.perf_counter() - started, 1e-9)
        for results in per_round:
            self._account_round(results, wall)
        return per_round

    def _account_round(self, results: List[ShardResult],
                       wall: float) -> None:
        self._obs_rounds.inc()
        for result in results:
            if result.spans:
                self._tracer.adopt(result.spans)
            self._obs_busy.observe(result.busy_seconds)
            self._obs_utilization.observe(
                min(result.busy_seconds / wall, 1.0))
            for batch in result.batches:
                self._obs_batches.inc()
                self._obs_traces.inc(len(batch))
                self._obs_batch_traces.observe(len(batch))
                self._obs_batch_bytes.observe(
                    sum(len(entry.payload) for entry in batch.entries))

    def _run_round(self, plan: RoundPlan, ctx=None) -> List[ShardResult]:
        raise NotImplementedError

    def _run_rounds(self, plans: List[RoundPlan],
                    ctxs: List) -> List[List[ShardResult]]:
        """Default window execution: in-process backends just loop —
        their per-round cost has no pipe round-trip to amortize."""
        return [self._run_round(plan, ctx)
                for plan, ctx in zip(plans, ctxs)]

    def close(self) -> None:
        pass

    @staticmethod
    def _shard_cache(enabled: bool):
        if not enabled:
            return None
        from repro.symbolic.cache import ConstraintCache
        return ConstraintCache()


class SerialBackend(_BackendBase):
    """Everything in the coordinator process, one shard: the historical
    execution model, now expressed through the shard pipeline so its
    results define the cross-backend determinism baseline."""

    name = "serial"

    def __init__(self, pods: Sequence[Pod], hive_program: Program,
                 limits: Optional[ExecutionLimits] = None,
                 dedup: bool = False, batch_max_traces: int = 0,
                 workers: int = 1, solver_cache: bool = False,
                 replay_products: bool = True):
        super().__init__(workers=1)
        self._shard = Shard(0, dict(enumerate(pods)), hive_program,
                            limits=limits, dedup=dedup,
                            batch_max_traces=batch_max_traces,
                            solver_cache=self._shard_cache(solver_cache),
                            replay_products=replay_products)

    def _run_round(self, plan: RoundPlan, ctx=None) -> List[ShardResult]:
        return [self._shard.run_shard(plan.runs, ctx)]

    def _publish(self, delta: SyncDelta) -> None:
        self._shard.apply_sync(delta)


class ThreadBackend(_BackendBase):
    """Per-thread shards over the coordinator's own pod objects."""

    name = "thread"

    def __init__(self, pods: Sequence[Pod], hive_program: Program,
                 limits: Optional[ExecutionLimits] = None,
                 dedup: bool = False, batch_max_traces: int = 0,
                 workers: int = 2, solver_cache: bool = False,
                 replay_products: bool = True):
        super().__init__(workers=workers)
        self._shards: List[Shard] = []
        for shard_id in range(workers):
            members = {index: pod for index, pod in enumerate(pods)
                       if index % workers == shard_id}
            # Caches are per-shard (thread-private); sharing happens
            # only through the hive's canonical merge between rounds.
            self._shards.append(Shard(
                shard_id, members, hive_program, limits=limits,
                dedup=dedup, batch_max_traces=batch_max_traces,
                solver_cache=self._shard_cache(solver_cache),
                replay_products=replay_products))
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-exec")
        return self._pool

    def _run_round(self, plan: RoundPlan, ctx=None) -> List[ShardResult]:
        pool = self._ensure_pool()
        slices = partition_runs(plan.runs, self.workers)
        futures = [pool.submit(shard.run_shard, runs, ctx)
                   for shard, runs in zip(self._shards, slices)]
        return [future.result() for future in futures]

    def _publish(self, delta: SyncDelta) -> None:
        for shard in self._shards:
            shard.apply_sync(delta)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(_BackendBase):
    """Long-lived worker processes, one shard each, session protocol.

    Workers are started lazily on the first round and reconstruct their
    pods from picklable specs (pod id + seed + serialized program), so
    shard state is a pure function of (platform config, session log) —
    the same guarantee the coordinator's own pods give — under both
    ``fork`` and ``spawn`` start methods.

    State crosses the pipe once: the spawn arguments carry the base
    program plus the cumulative :class:`~repro.exec.session.SessionLog`
    snapshot, so a worker respawned after a crash **replays the current
    epoch** — every published program deploy and rollout in order, plus
    the compacted cache facts — before it serves a round. Per round,
    only deltas cross: packed plans out (interned inputs), packed
    delta-shaped results back (outcome/product tables, tree edge rows,
    once-encoded trace payloads), and worker counter *deltas* instead
    of totals.
    """

    name = "process"

    def __init__(self, pod_specs: Sequence[tuple], hive_program: Program,
                 capture, limits: Optional[ExecutionLimits] = None,
                 fault_rate: float = 0.0,
                 dedup: bool = False, batch_max_traces: int = 0,
                 workers: int = 2, solver_cache: bool = False,
                 replay_products: bool = True):
        super().__init__(workers=workers)
        from repro.progmodel.serialize import encode_program
        self._pod_specs = list(pod_specs)   # (global_index, pod_id, seed)
        self._program_blob = encode_program(hive_program)
        self._capture = capture
        self._limits = limits or ExecutionLimits()
        self._fault_rate = fault_rate
        self._dedup = dedup
        self._batch_max_traces = batch_max_traces
        self._solver_cache = solver_cache
        self._replay_products = replay_products
        self._procs: List = []
        self._pipes: List = []
        #: Cumulative session state; replayed verbatim by every worker
        #: that (re)spawns, which is what makes respawn epoch-correct.
        self._session = SessionLog()

    #: Respawn budget per shard per round, with capped backoff between
    #: attempts (real seconds — these are real crashes, not simulated).
    _MAX_RESPAWNS = 3
    _RESPAWN_BACKOFF_BASE = 0.05
    _RESPAWN_BACKOFF_CAP = 0.2

    # -- lifecycle ------------------------------------------------------------

    def _context(self):
        import multiprocessing
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    def _spawn(self, context, shard_id: int):
        """Start one worker; returns its (process, pipe) pair."""
        specs = [spec for spec in self._pod_specs
                 if spec[0] % self.workers == shard_id]
        parent_conn, child_conn = context.Pipe()
        proc = context.Process(
            target=_process_worker_main,
            args=(child_conn, shard_id, specs, self._program_blob,
                  self._capture, self._limits, self._fault_rate,
                  self._dedup, self._batch_max_traces,
                  # (enabled, clock): enough for the worker to build an
                  # equivalent tracer. The clock must be picklable —
                  # builtins and FixedClock are.
                  self._tracer.spec(),
                  self._solver_cache, self._replay_products,
                  self._session.snapshot()),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _start(self) -> None:
        if self._procs:
            return
        context = self._context()
        for shard_id in range(self.workers):
            proc, pipe = self._spawn(context, shard_id)
            self._procs.append(proc)
            self._pipes.append(pipe)

    def _respawn(self, shard_id: int) -> None:
        """Replace a dead worker with a fresh one at the current epoch.

        The replacement replays the session log — the base program,
        every published deploy and staged rollout in order, and the
        compacted cache facts — so it rejoins with exactly the state
        its predecessor had published to it. The one thing a real crash
        cannot restore is pod RNG position: streams restart from the
        pod seed, so a real crash (unlike an injected one) is outside
        the bit-determinism contract; see docs/CHAOS.md."""
        old = self._procs[shard_id]
        if old.is_alive():
            old.terminate()
        old.join(timeout=10)
        try:
            self._pipes[shard_id].close()
        except (BrokenPipeError, OSError):
            pass
        proc, pipe = self._spawn(self._context(), shard_id)
        self._procs[shard_id] = proc
        self._pipes[shard_id] = pipe

    def _publish(self, delta: SyncDelta) -> None:
        from repro.progmodel.serialize import encode_program
        hive_blob = (encode_program(delta.hive_program)
                     if delta.hive_program is not None else None)
        rollout_blob = (encode_program(delta.rollout[0])
                        if delta.rollout is not None else None)
        payload = self._session.record(delta, hive_blob=hive_blob,
                                       rollout_blob=rollout_blob)
        for pipe in self._pipes:
            pipe.send(("publish",) + payload)

    def probe(self, shard_id: int = 0) -> Dict[str, object]:
        """Ask a live worker for its session state (tests and ops):
        epoch, hive program version, pod versions, cache size."""
        self._start()
        pipe = self._pipes[shard_id]
        pipe.send(("probe",))
        reply = pipe.recv()
        if reply[0] != "state":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected probe reply: {reply[0]}")
        return reply[1]

    def _run_round(self, plan: RoundPlan, ctx=None) -> List[ShardResult]:
        self._start()
        slices = partition_runs(plan.runs, self.workers)
        crashed: List[int] = []
        for shard_id, (pipe, runs) in enumerate(zip(self._pipes, slices)):
            try:
                pipe.send(("round", self._epoch, pack_runs(runs), ctx))
            except (BrokenPipeError, OSError):
                crashed.append(shard_id)
        results: List[Optional[ShardResult]] = [None] * self.workers
        for shard_id, pipe in enumerate(self._pipes):
            if shard_id in crashed:
                continue
            try:
                reply = pipe.recv()
            except (EOFError, OSError):
                crashed.append(shard_id)
                continue
            if reply[0] != "ok":
                self.close()
                raise RuntimeError(
                    f"exec worker shard {shard_id} failed:\n{reply[1]}")
            results[shard_id] = unpack_result(reply[1])
            self._merge_counters(reply[2])
        # Crash-tolerant rounds: a dead worker's shard is re-run on a
        # fresh replacement process — spawned at the current epoch —
        # with capped backoff between respawns, instead of aborting
        # the round.
        for shard_id in crashed:
            results[shard_id] = self._retry_shard(shard_id,
                                                  slices[shard_id], ctx)
        return results  # type: ignore[return-value]

    def _run_rounds(self, plans: List[RoundPlan],
                    ctxs: List) -> List[List[ShardResult]]:
        """One pipe transaction per shard for the whole K-round window.

        Each worker receives every round's slice of its own pods up
        front, executes the rounds strictly in plan order — so pod RNG
        streams and dedup state advance exactly as under K single
        rounds — and replies once with all K packed results. This is
        the batched-dispatch payoff: K-1 pipe round-trips disappear
        from the critical path.

        A worker that dies mid-window is respawned at the current
        epoch and re-runs its *entire* window. That is safe for the
        same reason single-round retry is: a real crash already loses
        pod RNG position (streams restart from the pod seed), so real
        crashes sit outside the bit-determinism contract either way;
        see docs/CHAOS.md.
        """
        self._start()
        window = len(plans)
        slices_by_round = [partition_runs(plan.runs, self.workers)
                           for plan in plans]
        ctx_list = list(ctxs)
        crashed: List[int] = []
        for shard_id, pipe in enumerate(self._pipes):
            packed = [pack_runs(slices_by_round[k][shard_id])
                      for k in range(window)]
            try:
                pipe.send(("rounds", self._epoch, packed, ctx_list))
            except (BrokenPipeError, OSError):
                crashed.append(shard_id)
        by_shard: List[Optional[List[ShardResult]]] = [None] * self.workers
        for shard_id, pipe in enumerate(self._pipes):
            if shard_id in crashed:
                continue
            try:
                reply = pipe.recv()
            except (EOFError, OSError):
                crashed.append(shard_id)
                continue
            if reply[0] != "ok":
                self.close()
                raise RuntimeError(
                    f"exec worker shard {shard_id} failed:\n{reply[1]}")
            by_shard[shard_id] = [unpack_result(p) for p in reply[1]]
            self._merge_counters(reply[2])
        for shard_id in crashed:
            by_shard[shard_id] = self._retry_window(
                shard_id,
                [slices_by_round[k][shard_id] for k in range(window)],
                ctx_list)
        # Transpose shard-major replies into the round-major shape the
        # coordinator folds.
        return [[by_shard[shard_id][k] for shard_id in range(self.workers)]
                for k in range(window)]  # type: ignore[index]

    def _retry_window(self, shard_id: int, run_slices,
                      ctxs) -> List[ShardResult]:
        """Window-shaped twin of :meth:`_retry_shard`: respawn with
        capped backoff, re-send the whole window, collect all K."""
        import time

        from repro.obs import get_registry
        registry = get_registry()
        respawns = registry.counter("exec.worker_respawns")
        attempts = registry.counter("retry.attempts")
        backoffs = registry.histogram("retry.backoff_seconds",
                                      unit="seconds")
        for attempt in range(1, self._MAX_RESPAWNS + 1):
            respawns.inc()
            attempts.inc()
            backoff = min(self._RESPAWN_BACKOFF_CAP,
                          self._RESPAWN_BACKOFF_BASE
                          * (2 ** (attempt - 1)))
            backoffs.observe(backoff)
            time.sleep(backoff)
            self._respawn(shard_id)
            pipe = self._pipes[shard_id]
            try:
                pipe.send(("rounds", self._epoch,
                           [pack_runs(runs) for runs in run_slices],
                           ctxs))
                reply = pipe.recv()
            except (EOFError, BrokenPipeError, OSError):
                continue
            if reply[0] != "ok":
                self.close()
                raise RuntimeError(
                    f"exec worker shard {shard_id} failed after"
                    f" respawn:\n{reply[1]}")
            self._merge_counters(reply[2])
            return [unpack_result(p) for p in reply[1]]
        registry.counter("retry.giveups").inc()
        self.close()
        raise RuntimeError(
            f"exec worker shard {shard_id} kept dying through"
            f" {self._MAX_RESPAWNS} respawns")

    def _retry_shard(self, shard_id: int, runs, ctx=None) -> ShardResult:
        import time

        from repro.obs import get_registry
        registry = get_registry()
        respawns = registry.counter("exec.worker_respawns")
        attempts = registry.counter("retry.attempts")
        backoffs = registry.histogram("retry.backoff_seconds",
                                      unit="seconds")
        for attempt in range(1, self._MAX_RESPAWNS + 1):
            respawns.inc()
            attempts.inc()
            backoff = min(self._RESPAWN_BACKOFF_CAP,
                          self._RESPAWN_BACKOFF_BASE
                          * (2 ** (attempt - 1)))
            backoffs.observe(backoff)
            time.sleep(backoff)
            self._respawn(shard_id)
            pipe = self._pipes[shard_id]
            try:
                pipe.send(("round", self._epoch, pack_runs(runs), ctx))
                reply = pipe.recv()
            except (EOFError, BrokenPipeError, OSError):
                continue
            if reply[0] != "ok":
                self.close()
                raise RuntimeError(
                    f"exec worker shard {shard_id} failed after"
                    f" respawn:\n{reply[1]}")
            self._merge_counters(reply[2])
            return unpack_result(reply[1])
        registry.counter("retry.giveups").inc()
        self.close()
        raise RuntimeError(
            f"exec worker shard {shard_id} kept dying through"
            f" {self._MAX_RESPAWNS} respawns")

    def _merge_counters(self, deltas: Dict[str, int]) -> None:
        """Fold worker-side counter *deltas* (pod executions, capture
        decisions, ...) into the coordinator registry, so counter
        metrics are backend-invariant. Workers track their own last
        shipped totals, which makes respawn bookkeeping free: a fresh
        worker simply starts its deltas from zero. Distribution metrics
        stay worker-local (documented in docs/PARALLEL.md)."""
        from repro.obs import get_registry
        registry = get_registry()
        for name, delta in deltas.items():
            registry.counter(name).inc(delta)

    def close(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(("stop",))
                pipe.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._procs = []
        self._pipes = []


def _process_worker_main(conn, shard_id: int, specs, program_blob: bytes,
                         capture, limits, fault_rate: float,
                         dedup: bool, batch_max_traces: int,
                         tracer_spec=(False, None),
                         solver_cache: bool = False,
                         replay_products: bool = True,
                         session=(0, (), ())) -> None:
    """Worker entry point: rebuild the shard, replay the session log,
    serve round requests at the session's epoch."""
    import traceback

    from repro.obs import Registry, get_registry, set_registry
    from repro.obs.trace import Tracer, set_tracer
    from repro.progmodel.serialize import decode_program

    # A fresh worker-local registry (under fork the default one holds
    # the coordinator's accumulated metrics). Counter deltas ship back
    # with every round reply.
    set_registry(Registry())
    # Same for the tracer: rebuild it from the coordinator's spec so
    # shard-side spans use the same clock (and the same no-op fast
    # path when tracing is off). Spans ride back inside ShardResult.
    enabled, clock = tracer_spec
    set_tracer(Tracer(enabled=enabled, clock=clock))
    if capture is not None:
        capture._obs_handles = None
    epoch, program_events, cache_items = session
    try:
        program = decode_program(program_blob)
        pods = {
            global_index: Pod(pod_id=pod_id, program=program,
                              capture=capture, limits=limits,
                              fault_rate=fault_rate, seed=seed)
            for global_index, pod_id, seed in specs
        }
        shard = Shard(shard_id, pods, program, limits=limits,
                      dedup=dedup, batch_max_traces=batch_max_traces,
                      solver_cache=_BackendBase._shard_cache(solver_cache),
                      replay_products=replay_products)
        # Epoch replay: everything published since the session opened,
        # in publish order, so this worker's pod/program/cache state is
        # exactly what a survivor's would be.
        for event in program_events:
            if event[0] == "hive":
                shard.set_hive_program(decode_program(event[1]))
            else:
                shard.apply_update(decode_program(event[1]), event[2])
        if cache_items:
            shard.merge_cache(list(cache_items))
    except Exception:  # pragma: no cover - construction is config-pure
        conn.send(("error", traceback.format_exc()))
        return
    last_totals: Dict[str, int] = {}

    def counter_deltas() -> Dict[str, int]:
        totals = get_registry().snapshot()["counters"]
        deltas = {name: value - last_totals.get(name, 0)
                  for name, value in totals.items()
                  if value != last_totals.get(name, 0)}
        last_totals.clear()
        last_totals.update(totals)
        return deltas

    while True:
        try:
            message = conn.recv()
        except EOFError:  # pragma: no cover - coordinator died
            return
        kind = message[0]
        try:
            if kind == "round":
                if message[1] != epoch:
                    raise RuntimeError(
                        f"shard {shard_id} at epoch {epoch} received a"
                        f" round stamped epoch {message[1]}")
                ctx = message[3] if len(message) > 3 else None
                result = shard.run_shard(unpack_runs(message[2]), ctx)
                conn.send(("ok", pack_result(result), counter_deltas()))
            elif kind == "rounds":
                # Batched dispatch: K planned rounds in one message,
                # executed strictly in order, one reply for the window.
                if message[1] != epoch:
                    raise RuntimeError(
                        f"shard {shard_id} at epoch {epoch} received a"
                        f" window stamped epoch {message[1]}")
                packed_results = []
                for packed, ctx in zip(message[2], message[3]):
                    result = shard.run_shard(unpack_runs(packed), ctx)
                    packed_results.append(pack_result(result))
                conn.send(("ok", packed_results, counter_deltas()))
            elif kind == "publish":
                epoch, hive_blob, rollout, cache = message[1:5]
                if hive_blob is not None:
                    shard.set_hive_program(decode_program(hive_blob))
                if rollout is not None:
                    shard.apply_update(decode_program(rollout[0]),
                                       rollout[1])
                if cache:
                    shard.merge_cache(cache)
            elif kind == "probe":
                conn.send(("state", {
                    "epoch": epoch,
                    "hive_version": shard.hive_program.version,
                    "pod_versions": {index: pod.version
                                     for index, pod in shard.pods.items()},
                    "cache_entries": (len(shard.solver_cache)
                                      if shard.solver_cache is not None
                                      else 0),
                }))
            elif kind == "stop":
                return
        except Exception:
            conn.send(("error", traceback.format_exc()))


def make_backend(name: str, pods: Sequence[Pod], hive_program: Program,
                 *, capture=None, limits: Optional[ExecutionLimits] = None,
                 fault_rate: float = 0.0, dedup: bool = False,
                 batch_max_traces: int = 0,
                 workers: int = 0,
                 solver_cache: str = "none",
                 replay_products: bool = True) -> ExecutorBackend:
    """Build the backend named by ``name`` (already resolved).

    ``solver_cache="collective"`` equips every shard with a private
    :class:`~repro.symbolic.cache.ConstraintCache` that recycles replayed
    traces into solver facts; ``"local"`` and ``"none"`` leave shards
    cache-free (a local cache lives hive-side only).
    ``replay_products=False`` turns shard-side replay off entirely —
    service mode does this when its wire re-framing would discard the
    products anyway.
    """
    workers = resolve_workers(workers, name, len(pods))
    recycle = solver_cache == "collective"
    if name == "serial":
        return SerialBackend(pods, hive_program, limits=limits,
                             dedup=dedup,
                             batch_max_traces=batch_max_traces,
                             solver_cache=recycle,
                             replay_products=replay_products)
    if name == "thread":
        return ThreadBackend(pods, hive_program, limits=limits,
                             dedup=dedup,
                             batch_max_traces=batch_max_traces,
                             workers=workers, solver_cache=recycle,
                             replay_products=replay_products)
    if name == "process":
        specs = [(index, pod.pod_id, pod.seed)
                 for index, pod in enumerate(pods)]
        return ProcessBackend(specs, hive_program, capture,
                              limits=limits, fault_rate=fault_rate,
                              dedup=dedup,
                              batch_max_traces=batch_max_traces,
                              workers=workers, solver_cache=recycle,
                              replay_products=replay_products)
    raise ConfigError(f"unknown backend {name!r}")
