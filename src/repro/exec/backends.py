"""Execution backends: how a round's planned runs actually execute.

The platform plans a round (all coordinator randomness, serialized),
hands the plan to an :class:`ExecutorBackend`, and gets back per-shard
:class:`ShardResult` lists. Three implementations:

* :class:`SerialBackend` — one in-process shard over every pod; the
  historical behaviour and the default.
* :class:`ThreadBackend` — pods partitioned into per-thread shards.
  Python threads only overlap during I/O or C-level work, so this
  backend is mostly a stepping stone / GIL-contention testbed; results
  are still bit-identical.
* :class:`ProcessBackend` — pods partitioned across long-lived worker
  processes (one :class:`~repro.exec.shard.Shard` each). Plans cross
  the channel pickled; programs cross as ``progmodel.serialize`` bytes;
  traces come back ``tracing.encode``-packed in
  :class:`~repro.exec.batch.TraceBatch` flushes. This is the backend
  that actually buys wall-clock on multi-core hosts.

Every backend feeds ``repro.obs``: round execute latency, batch
count/size/bytes, per-shard busy seconds, and worker utilization
(busy / round wall-clock, the parallel-efficiency signal).

Backend choice is config- or environment-driven (``REPRO_BACKEND``);
``resolve_backend_name`` centralizes the rule.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

try:  # pragma: no cover
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from repro.errors import ConfigError
from repro.exec.batch import ShardResult
from repro.exec.plan import PlannedRun, RoundPlan, partition_runs
from repro.exec.shard import Shard
from repro.obs import Instrumented
from repro.obs.trace import get_tracer
from repro.pod.pod import Pod
from repro.progmodel.interpreter import ExecutionLimits
from repro.progmodel.ir import Program

__all__ = [
    "BACKEND_NAMES", "ExecutorBackend",
    "SerialBackend", "ThreadBackend", "ProcessBackend",
    "make_backend", "resolve_backend_name", "resolve_workers",
]

BACKEND_NAMES = ("serial", "thread", "process")

_ENV_BACKEND = "REPRO_BACKEND"


def resolve_backend_name(name: str) -> str:
    """Map a config value to a concrete backend name.

    ``"auto"`` defers to the ``REPRO_BACKEND`` environment variable
    (the CI matrix leg sets it to ``process`` to run the whole suite
    through the parallel path), defaulting to ``serial``.
    """
    if name == "auto":
        name = os.environ.get(_ENV_BACKEND, "").strip().lower() or "serial"
    if name not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown backend {name!r}; expected one of"
            f" {', '.join(BACKEND_NAMES)} or 'auto'")
    return name


def resolve_workers(workers: int, backend: str, n_pods: int) -> int:
    """0 = auto: one worker per core, capped at 4 and at the pod count
    (a shard with no pods would just idle)."""
    if backend == "serial":
        return 1
    if workers <= 0:
        workers = min(4, os.cpu_count() or 1)
    return max(1, min(workers, n_pods))


class ExecutorBackend(Protocol):
    """What the platform requires of an execution backend."""

    name: str
    workers: int

    def run_round(self, plan: RoundPlan) -> List[ShardResult]:
        """Execute the plan; shard results ordered by shard id."""

    def set_hive_program(self, program: Program) -> None:
        """Broadcast the hive's current (possibly fixed) program."""

    def apply_update(self, program: Program,
                     pod_indices: Sequence[int]) -> None:
        """Staged rollout of ``program`` onto the named pods."""

    def seed_cache(self, delta) -> None:
        """Redistribute hive constraint-cache facts to every shard."""

    def close(self) -> None:
        """Release worker resources (idempotent)."""


class _BackendBase(Instrumented):
    """Shared observability + lifecycle for every backend."""

    obs_namespace = "exec"
    name = "abstract"

    def __init__(self, workers: int):
        self.workers = workers
        self._tracer = get_tracer()
        self._obs_rounds = self.obs_counter("rounds")
        self._obs_batches = self.obs_counter("batches")
        self._obs_traces = self.obs_counter("batched_traces")
        self._obs_round_time = self.obs_timer("round_execute")
        self._obs_batch_traces = self.obs_histogram("batch_traces",
                                                    unit="traces")
        self._obs_batch_bytes = self.obs_histogram("batch_bytes",
                                                   unit="bytes")
        # Wall-clock-derived distributions register as timers: the
        # snapshot contract is that histogram values reproduce exactly
        # under a fixed seed while timers may vary run to run.
        self._obs_busy = self.obs_timer("worker_busy")
        self._obs_utilization = self.obs_timer("worker_utilization")
        self.obs_gauge("workers").set(workers)

    def run_round(self, plan: RoundPlan) -> List[ShardResult]:
        import time
        started = time.perf_counter()
        # Shards record their spans into per-shard recorders rooted at
        # the coordinator's active span; the results carry them back
        # (across the worker pipe, for the process backend) and they
        # graft into one tree here.
        ctx = self._tracer.current_context()
        with self._obs_round_time.time():
            results = self._run_round(plan, ctx)
        wall = max(time.perf_counter() - started, 1e-9)
        self._obs_rounds.inc()
        for result in results:
            if result.spans:
                self._tracer.adopt(result.spans)
            self._obs_busy.observe(result.busy_seconds)
            self._obs_utilization.observe(
                min(result.busy_seconds / wall, 1.0))
            for batch in result.batches:
                self._obs_batches.inc()
                self._obs_traces.inc(len(batch))
                self._obs_batch_traces.observe(len(batch))
                self._obs_batch_bytes.observe(
                    sum(len(entry.payload) for entry in batch.entries))
        return results

    def _run_round(self, plan: RoundPlan, ctx=None) -> List[ShardResult]:
        raise NotImplementedError

    def set_hive_program(self, program: Program) -> None:
        raise NotImplementedError

    def apply_update(self, program: Program,
                     pod_indices: Sequence[int]) -> None:
        raise NotImplementedError

    def seed_cache(self, delta) -> None:
        pass

    def close(self) -> None:
        pass

    @staticmethod
    def _shard_cache(enabled: bool):
        if not enabled:
            return None
        from repro.symbolic.cache import ConstraintCache
        return ConstraintCache()


class SerialBackend(_BackendBase):
    """Everything in the coordinator process, one shard: the historical
    execution model, now expressed through the shard pipeline so its
    results define the cross-backend determinism baseline."""

    name = "serial"

    def __init__(self, pods: Sequence[Pod], hive_program: Program,
                 limits: Optional[ExecutionLimits] = None,
                 dedup: bool = False, batch_max_traces: int = 0,
                 workers: int = 1, solver_cache: bool = False,
                 replay_products: bool = True):
        super().__init__(workers=1)
        self._shard = Shard(0, dict(enumerate(pods)), hive_program,
                            limits=limits, dedup=dedup,
                            batch_max_traces=batch_max_traces,
                            solver_cache=self._shard_cache(solver_cache),
                            replay_products=replay_products)

    def _run_round(self, plan: RoundPlan, ctx=None) -> List[ShardResult]:
        return [self._shard.run_shard(plan.runs, ctx)]

    def set_hive_program(self, program: Program) -> None:
        self._shard.set_hive_program(program)

    def apply_update(self, program: Program,
                     pod_indices: Sequence[int]) -> None:
        self._shard.apply_update(program, pod_indices)

    def seed_cache(self, delta) -> None:
        self._shard.merge_cache(delta)


class ThreadBackend(_BackendBase):
    """Per-thread shards over the coordinator's own pod objects."""

    name = "thread"

    def __init__(self, pods: Sequence[Pod], hive_program: Program,
                 limits: Optional[ExecutionLimits] = None,
                 dedup: bool = False, batch_max_traces: int = 0,
                 workers: int = 2, solver_cache: bool = False,
                 replay_products: bool = True):
        super().__init__(workers=workers)
        self._shards: List[Shard] = []
        for shard_id in range(workers):
            members = {index: pod for index, pod in enumerate(pods)
                       if index % workers == shard_id}
            # Caches are per-shard (thread-private); sharing happens
            # only through the hive's canonical merge between rounds.
            self._shards.append(Shard(
                shard_id, members, hive_program, limits=limits,
                dedup=dedup, batch_max_traces=batch_max_traces,
                solver_cache=self._shard_cache(solver_cache),
                replay_products=replay_products))
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-exec")
        return self._pool

    def _run_round(self, plan: RoundPlan, ctx=None) -> List[ShardResult]:
        pool = self._ensure_pool()
        slices = partition_runs(plan.runs, self.workers)
        futures = [pool.submit(shard.run_shard, runs, ctx)
                   for shard, runs in zip(self._shards, slices)]
        return [future.result() for future in futures]

    def set_hive_program(self, program: Program) -> None:
        for shard in self._shards:
            shard.set_hive_program(program)

    def apply_update(self, program: Program,
                     pod_indices: Sequence[int]) -> None:
        for shard in self._shards:
            shard.apply_update(program, pod_indices)

    def seed_cache(self, delta) -> None:
        for shard in self._shards:
            shard.merge_cache(delta)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(_BackendBase):
    """Long-lived worker processes, one shard each.

    Workers are started lazily on the first round and reconstruct their
    pods from picklable specs (pod id + seed + serialized program), so
    shard state is a pure function of the platform config — the same
    guarantee the coordinator's own pods give — under both ``fork`` and
    ``spawn`` start methods.
    """

    name = "process"

    def __init__(self, pod_specs: Sequence[tuple], hive_program: Program,
                 capture, limits: Optional[ExecutionLimits] = None,
                 fault_rate: float = 0.0,
                 dedup: bool = False, batch_max_traces: int = 0,
                 workers: int = 2, solver_cache: bool = False,
                 replay_products: bool = True):
        super().__init__(workers=workers)
        from repro.progmodel.serialize import encode_program
        self._pod_specs = list(pod_specs)   # (global_index, pod_id, seed)
        self._program_blob = encode_program(hive_program)
        self._capture = capture
        self._limits = limits or ExecutionLimits()
        self._fault_rate = fault_rate
        self._dedup = dedup
        self._batch_max_traces = batch_max_traces
        self._solver_cache = solver_cache
        self._replay_products = replay_products
        self._procs: List = []
        self._pipes: List = []
        # Last-seen worker counter totals, for delta-merging worker
        # metrics (pod.*, capture.*) into the coordinator registry.
        self._counter_base: List[Dict[str, int]] = []
        # Messages queued before workers exist (e.g. an update broadcast
        # between construction and the first round) replay at start.
        self._pending: List[tuple] = []

    #: Respawn budget per shard per round, with capped backoff between
    #: attempts (real seconds — these are real crashes, not simulated).
    _MAX_RESPAWNS = 3
    _RESPAWN_BACKOFF_BASE = 0.05
    _RESPAWN_BACKOFF_CAP = 0.2

    # -- lifecycle ------------------------------------------------------------

    def _context(self):
        import multiprocessing
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    def _spawn(self, context, shard_id: int):
        """Start one worker; returns its (process, pipe) pair."""
        specs = [spec for spec in self._pod_specs
                 if spec[0] % self.workers == shard_id]
        parent_conn, child_conn = context.Pipe()
        proc = context.Process(
            target=_process_worker_main,
            args=(child_conn, shard_id, specs, self._program_blob,
                  self._capture, self._limits, self._fault_rate,
                  self._dedup, self._batch_max_traces,
                  # (enabled, clock): enough for the worker to build an
                  # equivalent tracer. The clock must be picklable —
                  # builtins and FixedClock are.
                  self._tracer.spec(),
                  self._solver_cache, self._replay_products),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _start(self) -> None:
        if self._procs:
            return
        context = self._context()
        for shard_id in range(self.workers):
            proc, pipe = self._spawn(context, shard_id)
            self._procs.append(proc)
            self._pipes.append(pipe)
            self._counter_base.append({})
        for message in self._pending:
            self._broadcast(message)
        self._pending = []

    def _respawn(self, shard_id: int) -> None:
        """Replace a dead worker with a fresh one.

        The replacement rebuilds its pods from specs against the hive's
        *current* program — their RNG streams restart, so a real crash
        (unlike an injected one) is outside the bit-determinism
        contract; see docs/CHAOS.md."""
        old = self._procs[shard_id]
        if old.is_alive():
            old.terminate()
        old.join(timeout=10)
        try:
            self._pipes[shard_id].close()
        except (BrokenPipeError, OSError):
            pass
        proc, pipe = self._spawn(self._context(), shard_id)
        self._procs[shard_id] = proc
        self._pipes[shard_id] = pipe
        # Fresh worker, fresh worker-local registry: its counter totals
        # restart from zero, so the delta base must too.
        self._counter_base[shard_id] = {}

    def _broadcast(self, message: tuple) -> None:
        if not self._procs:
            self._pending.append(message)
            return
        for pipe in self._pipes:
            pipe.send(message)

    def _run_round(self, plan: RoundPlan, ctx=None) -> List[ShardResult]:
        self._start()
        slices = partition_runs(plan.runs, self.workers)
        crashed: List[int] = []
        for shard_id, (pipe, runs) in enumerate(zip(self._pipes, slices)):
            try:
                pipe.send(("round", runs, ctx))
            except (BrokenPipeError, OSError):
                crashed.append(shard_id)
        results: List[Optional[ShardResult]] = [None] * self.workers
        for shard_id, pipe in enumerate(self._pipes):
            if shard_id in crashed:
                continue
            try:
                reply = pipe.recv()
            except (EOFError, OSError):
                crashed.append(shard_id)
                continue
            if reply[0] != "ok":
                self.close()
                raise RuntimeError(
                    f"exec worker shard {shard_id} failed:\n{reply[1]}")
            results[shard_id] = reply[1]
            self._merge_counters(shard_id, reply[2])
        # Crash-tolerant rounds: a dead worker's shard is re-run on a
        # fresh replacement process, with capped backoff between
        # respawns, instead of aborting the round.
        for shard_id in crashed:
            results[shard_id] = self._retry_shard(shard_id,
                                                  slices[shard_id], ctx)
        return results  # type: ignore[return-value]

    def _retry_shard(self, shard_id: int, runs, ctx=None) -> ShardResult:
        import time

        from repro.obs import get_registry
        registry = get_registry()
        respawns = registry.counter("exec.worker_respawns")
        attempts = registry.counter("retry.attempts")
        backoffs = registry.histogram("retry.backoff_seconds",
                                      unit="seconds")
        for attempt in range(1, self._MAX_RESPAWNS + 1):
            respawns.inc()
            attempts.inc()
            backoff = min(self._RESPAWN_BACKOFF_CAP,
                          self._RESPAWN_BACKOFF_BASE
                          * (2 ** (attempt - 1)))
            backoffs.observe(backoff)
            time.sleep(backoff)
            self._respawn(shard_id)
            pipe = self._pipes[shard_id]
            try:
                pipe.send(("round", runs, ctx))
                reply = pipe.recv()
            except (EOFError, BrokenPipeError, OSError):
                continue
            if reply[0] != "ok":
                self.close()
                raise RuntimeError(
                    f"exec worker shard {shard_id} failed after"
                    f" respawn:\n{reply[1]}")
            self._merge_counters(shard_id, reply[2])
            return reply[1]
        registry.counter("retry.giveups").inc()
        self.close()
        raise RuntimeError(
            f"exec worker shard {shard_id} kept dying through"
            f" {self._MAX_RESPAWNS} respawns")

    def _merge_counters(self, shard_id: int,
                        totals: Dict[str, int]) -> None:
        """Fold worker-side counter totals (pod executions, capture
        decisions, ...) into the coordinator registry, by delta, so
        counter metrics are backend-invariant. Distribution metrics
        stay worker-local (documented in docs/PARALLEL.md)."""
        from repro.obs import get_registry
        registry = get_registry()
        base = self._counter_base[shard_id]
        for name, value in totals.items():
            delta = value - base.get(name, 0)
            if delta:
                registry.counter(name).inc(delta)
        self._counter_base[shard_id] = totals

    def set_hive_program(self, program: Program) -> None:
        from repro.progmodel.serialize import encode_program
        self._program_blob = encode_program(program)
        self._broadcast(("hive_program", self._program_blob))

    def apply_update(self, program: Program,
                     pod_indices: Sequence[int]) -> None:
        from repro.progmodel.serialize import encode_program
        self._broadcast(("update", encode_program(program),
                         tuple(pod_indices)))

    def seed_cache(self, delta) -> None:
        if self._solver_cache and delta:
            self._broadcast(("cache", delta))

    def close(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(("stop",))
                pipe.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._procs = []
        self._pipes = []


def _process_worker_main(conn, shard_id: int, specs, program_blob: bytes,
                         capture, limits, fault_rate: float,
                         dedup: bool, batch_max_traces: int,
                         tracer_spec=(False, None),
                         solver_cache: bool = False,
                         replay_products: bool = True) -> None:
    """Worker entry point: rebuild the shard, serve round requests."""
    import traceback

    from repro.obs import Registry, get_registry, set_registry
    from repro.obs.trace import Tracer, set_tracer
    from repro.progmodel.serialize import decode_program

    # A fresh worker-local registry (under fork the default one holds
    # the coordinator's accumulated metrics). Counter totals ship back
    # with every round reply and the coordinator delta-merges them.
    set_registry(Registry())
    # Same for the tracer: rebuild it from the coordinator's spec so
    # shard-side spans use the same clock (and the same no-op fast
    # path when tracing is off). Spans ride back inside ShardResult.
    enabled, clock = tracer_spec
    set_tracer(Tracer(enabled=enabled, clock=clock))
    if capture is not None:
        capture._obs_handles = None
    try:
        program = decode_program(program_blob)
        pods = {
            global_index: Pod(pod_id=pod_id, program=program,
                              capture=capture, limits=limits,
                              fault_rate=fault_rate, seed=seed)
            for global_index, pod_id, seed in specs
        }
        shard = Shard(shard_id, pods, program, limits=limits,
                      dedup=dedup, batch_max_traces=batch_max_traces,
                      solver_cache=_BackendBase._shard_cache(solver_cache),
                      replay_products=replay_products)
    except Exception:  # pragma: no cover - construction is config-pure
        conn.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            message = conn.recv()
        except EOFError:  # pragma: no cover - coordinator died
            return
        kind = message[0]
        try:
            if kind == "round":
                ctx = message[2] if len(message) > 2 else None
                result = shard.run_shard(message[1], ctx)
                counters = get_registry().snapshot()["counters"]
                conn.send(("ok", result, counters))
            elif kind == "hive_program":
                shard.set_hive_program(decode_program(message[1]))
            elif kind == "update":
                shard.apply_update(decode_program(message[1]), message[2])
            elif kind == "cache":
                shard.merge_cache(message[1])
            elif kind == "stop":
                return
        except Exception:
            conn.send(("error", traceback.format_exc()))


def make_backend(name: str, pods: Sequence[Pod], hive_program: Program,
                 *, capture=None, limits: Optional[ExecutionLimits] = None,
                 fault_rate: float = 0.0, dedup: bool = False,
                 batch_max_traces: int = 0,
                 workers: int = 0,
                 solver_cache: str = "none",
                 replay_products: bool = True) -> ExecutorBackend:
    """Build the backend named by ``name`` (already resolved).

    ``solver_cache="collective"`` equips every shard with a private
    :class:`~repro.symbolic.cache.ConstraintCache` that recycles replayed
    traces into solver facts; ``"local"`` and ``"none"`` leave shards
    cache-free (a local cache lives hive-side only).
    ``replay_products=False`` turns shard-side replay off entirely —
    service mode does this when its wire re-framing would discard the
    products anyway.
    """
    workers = resolve_workers(workers, name, len(pods))
    recycle = solver_cache == "collective"
    if name == "serial":
        return SerialBackend(pods, hive_program, limits=limits,
                             dedup=dedup,
                             batch_max_traces=batch_max_traces,
                             solver_cache=recycle,
                             replay_products=replay_products)
    if name == "thread":
        return ThreadBackend(pods, hive_program, limits=limits,
                             dedup=dedup,
                             batch_max_traces=batch_max_traces,
                             workers=workers, solver_cache=recycle,
                             replay_products=replay_products)
    if name == "process":
        specs = [(index, pod.pod_id, pod.seed)
                 for index, pod in enumerate(pods)]
        return ProcessBackend(specs, hive_program, capture,
                              limits=limits, fault_rate=fault_rate,
                              dedup=dedup,
                              batch_max_traces=batch_max_traces,
                              workers=workers, solver_cache=recycle,
                              replay_products=replay_products)
    raise ConfigError(f"unknown backend {name!r}")
