"""Proof objects: evidence-backed statements about a program version."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.proofs.properties import OutcomeProperty

__all__ = ["ProofStatus", "Proof"]


class ProofStatus(Enum):
    PARTIAL = "partial"     # some feasible paths not yet witnessed
    PROVED = "proved"       # all feasible paths witnessed, none violating
    REFUTED = "refuted"     # a witnessed counterexample exists


@dataclass
class Proof:
    """A (possibly partial) proof of one property for one version.

    ``total_feasible_paths`` is None when no symbolic oracle is
    available (e.g. multi-threaded programs, where the denominator over
    schedules is unbounded) — such proofs can be REFUTED by evidence
    but never reach PROVED; they remain honest partial statements.
    """

    program_name: str
    program_version: int
    property: OutcomeProperty
    status: ProofStatus
    covered_paths: int
    total_feasible_paths: Optional[int]
    violating_paths: int = 0
    counterexamples: List[str] = field(default_factory=list)
    invalidated: bool = False

    @property
    def coverage(self) -> float:
        if not self.total_feasible_paths:
            return 0.0
        return min(1.0, self.covered_paths / self.total_feasible_paths)

    @property
    def is_complete(self) -> bool:
        return self.status is ProofStatus.PROVED

    def describe(self) -> str:
        scope = (f"{self.covered_paths}/{self.total_feasible_paths}"
                 if self.total_feasible_paths is not None
                 else f"{self.covered_paths}/?")
        flag = " [INVALIDATED]" if self.invalidated else ""
        return (f"{self.property} on {self.program_name}"
                f" v{self.program_version}: {self.status.value}"
                f" (paths {scope}){flag}")
