"""Behavioural properties SoftBorg proves about programs.

Properties are predicates over execution *outcomes*; a property holds
for a program iff it holds on every feasible path. This is exactly the
class of property the paper's examples use (absence of deadlock,
absence of crashes), kept deliberately outcome-shaped so both the
symbolic oracle and concrete executions can check it uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.progmodel.interpreter import Outcome

__all__ = [
    "OutcomeProperty", "NEVER_CRASHES", "NEVER_DEADLOCKS",
    "ALWAYS_TERMINATES", "NO_FAILURES",
]


@dataclass(frozen=True)
class OutcomeProperty:
    """A property violated exactly by the listed outcomes."""

    name: str
    forbidden: FrozenSet[Outcome]

    def holds_for(self, outcome: Outcome) -> bool:
        return outcome not in self.forbidden

    def __str__(self) -> str:
        return self.name


NEVER_CRASHES = OutcomeProperty(
    "never-crashes", frozenset({Outcome.CRASH, Outcome.ASSERT}))

NEVER_DEADLOCKS = OutcomeProperty(
    "never-deadlocks", frozenset({Outcome.DEADLOCK}))

ALWAYS_TERMINATES = OutcomeProperty(
    "always-terminates", frozenset({Outcome.HANG, Outcome.DEADLOCK}))

NO_FAILURES = OutcomeProperty(
    "no-failures", frozenset({Outcome.CRASH, Outcome.ASSERT,
                              Outcome.DEADLOCK, Outcome.HANG}))
