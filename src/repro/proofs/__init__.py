"""Cumulative proofs (paper Sec. 3.3).

"A complete exploration of all paths leads to a proof, while a test is
just a weaker proof that covers a smaller subset of the paths." The
prover unifies the two: every witnessed execution is proof evidence for
its path; the symbolic engine supplies the denominator (the feasible
path set) and checks completeness; a property is *proved* when every
feasible path has been witnessed and none violates it, and *refuted*
the moment a counterexample path is observed. Deploying a fix bumps the
program version and invalidates outstanding proofs, which then re-build
against the fixed program.
"""

from repro.proofs.properties import (
    ALWAYS_TERMINATES,
    NEVER_CRASHES,
    NEVER_DEADLOCKS,
    NO_FAILURES,
    OutcomeProperty,
)
from repro.proofs.proof import Proof, ProofStatus
from repro.proofs.prover import CumulativeProver, ProofLedger

__all__ = [
    "OutcomeProperty", "NEVER_CRASHES", "NEVER_DEADLOCKS",
    "ALWAYS_TERMINATES", "NO_FAILURES",
    "Proof", "ProofStatus", "CumulativeProver", "ProofLedger",
]
