"""The cumulative prover: tests and proofs on one spectrum.

For single-threaded programs the symbolic engine enumerates the
feasible path set once per program version (the *denominator*); every
execution witnessed by the tree covers one of those paths (the
*numerator*). The proof is:

* REFUTED as soon as any witnessed path violates the property (the
  counterexample is concrete — it happened on a user's machine);
* PROVED when every feasible path is witnessed and none violates;
* PARTIAL otherwise, with an exact coverage fraction.

For multi-threaded programs the schedule space has no tractable
denominator; the prover degrades to evidence-only mode (REFUTED or
PARTIAL), which is the honest reading of the paper's claim.

Deploying a fix produces a new program version: outstanding proofs are
invalidated and a fresh denominator is computed against the fixed
program (paper Sec. 3.3: the hive must "decide whether the
instrumentation invalidates the hive's existing knowledge and proofs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ProofError
from repro.progmodel.interpreter import Outcome
from repro.progmodel.ir import Program
from repro.proofs.proof import Proof, ProofStatus
from repro.proofs.properties import OutcomeProperty
from repro.symbolic.engine import SymbolicEngine, SymbolicLimits
from repro.tree.exectree import ExecutionTree

__all__ = ["CumulativeProver", "ProofLedger"]

Decision = Tuple[Tuple[int, str, str], bool]


class CumulativeProver:
    """Incrementally proves one property about one program."""

    def __init__(self, program: Program, property: OutcomeProperty,
                 limits: Optional[SymbolicLimits] = None,
                 cache=None):
        self.property = property
        self._limits = limits
        self._cache = cache
        from repro.symbolic.solver import SolverStats
        #: Cumulative solver accounting across every version's oracle
        #: exploration (the per-version engine itself is transient).
        self.solver_stats = SolverStats()
        self._witnessed: Dict[Tuple[Decision, ...], Outcome] = {}
        self._old_proofs: List[Proof] = []
        self._install(program)

    # -- program / version management -----------------------------------------

    def _install(self, program: Program) -> None:
        self.program = program
        self._witnessed.clear()
        self._oracle_paths: Optional[Set[Tuple[Decision, ...]]]
        if len(program.threads) == 1:
            engine = SymbolicEngine(program, limits=self._limits,
                                    cache=self._cache)
            paths = engine.explore()
            self.solver_stats.add(engine.solver.stats)
            self._oracle_paths = {p.decisions for p in paths}
            self._oracle_examples = {p.decisions: dict(p.example_inputs)
                                     for p in paths}
            # Concrete executions additionally record decisions at
            # syscall-return-driven branches, which the fault-free
            # oracle resolves concretely (they are not forks). Witnessed
            # paths are projected onto the oracle's site alphabet before
            # coverage matching; proofs are therefore statements modulo
            # the fault-free environment model — fault-driven paths can
            # REFUTE a proof but never count toward completing it.
            self._oracle_sites = {site for path in self._oracle_paths
                                  for (site, _taken) in path}
        else:
            self._oracle_paths = None
            self._oracle_examples = {}
            self._oracle_sites = set()

    def _project(self, path: Tuple[Decision, ...]) -> Tuple[Decision, ...]:
        return tuple((site, taken) for (site, taken) in path
                     if site in self._oracle_sites)

    def on_fix_deployed(self, fixed_program: Program) -> None:
        """Invalidate current knowledge; restart against the new version."""
        if fixed_program.version <= self.program.version:
            raise ProofError(
                "fix deployment must increase the program version")
        proof = self.current_proof()
        proof.invalidated = True
        self._old_proofs.append(proof)
        self._install(fixed_program)

    # -- evidence ingestion -----------------------------------------------------

    def observe_path(self, decisions: Sequence[Decision],
                     outcome: Outcome) -> None:
        self._witnessed[tuple(decisions)] = outcome

    def observe_tree(self, tree: ExecutionTree) -> None:
        """Fold in every terminal path of a collective execution tree."""
        if tree.program_version != self.program.version:
            raise ProofError(
                f"tree is for version {tree.program_version}, prover is"
                f" on version {self.program.version}")
        for path, outcomes in tree.iter_terminal_paths():
            # A path may carry several outcomes (environment faults,
            # schedules); any violating one refutes.
            chosen = None
            for outcome in outcomes:
                if not self.property.holds_for(outcome):
                    chosen = outcome
                    break
            if chosen is None:
                chosen = next(iter(outcomes))
            self.observe_path(path, chosen)

    # -- proof extraction ---------------------------------------------------------

    def current_proof(self) -> Proof:
        violating = [path for path, outcome in self._witnessed.items()
                     if not self.property.holds_for(outcome)]
        if self._oracle_paths is not None:
            projected = {self._project(path) for path in self._witnessed}
            covered = sum(1 for path in projected
                          if path in self._oracle_paths)
            total: Optional[int] = len(self._oracle_paths)
        else:
            covered = len(self._witnessed)
            total = None
        if violating:
            status = ProofStatus.REFUTED
        elif total is not None and covered >= total:
            status = ProofStatus.PROVED
        else:
            status = ProofStatus.PARTIAL
        return Proof(
            program_name=self.program.name,
            program_version=self.program.version,
            property=self.property,
            status=status,
            covered_paths=covered,
            total_feasible_paths=total,
            violating_paths=len(violating),
            counterexamples=[_describe_path(p) for p in violating[:5]],
        )

    def unwitnessed_paths(self) -> List[Tuple[Decision, ...]]:
        """Feasible paths no execution has covered yet — the "gaps"
        guidance should fill (empty when no oracle is available)."""
        if self._oracle_paths is None:
            return []
        projected = {self._project(path) for path in self._witnessed}
        return sorted(path for path in self._oracle_paths
                      if path not in projected)

    def example_inputs_for(self, path: Tuple[Decision, ...],
                           ) -> Optional[Dict[str, int]]:
        """The oracle's satisfying inputs for a feasible path — the
        cheapest possible steering directive toward it."""
        return self._oracle_examples.get(tuple(path))

    @property
    def invalidated_proofs(self) -> List[Proof]:
        return list(self._old_proofs)


def _describe_path(path: Tuple[Decision, ...]) -> str:
    if not path:
        return "<empty path>"
    steps = ",".join(
        f"{fn}:{blk}={'T' if taken else 'F'}"
        for (_thread, fn, blk), taken in path)
    return steps


@dataclass
class ProofLedger:
    """Time series of proof snapshots (experiment E11)."""

    snapshots: List[Tuple[int, Proof]] = field(default_factory=list)

    def record(self, tick: int, proof: Proof) -> None:
        self.snapshots.append((tick, proof))

    def coverage_series(self) -> List[Tuple[int, float]]:
        return [(tick, proof.coverage) for tick, proof in self.snapshots]

    def status_series(self) -> List[Tuple[int, str]]:
        return [(tick, proof.status.value) for tick, proof in self.snapshots]

    def first_proved_tick(self) -> Optional[int]:
        for tick, proof in self.snapshots:
            if proof.status is ProofStatus.PROVED:
                return tick
        return None

    def invalidation_ticks(self) -> List[int]:
        ticks = []
        previous_version: Optional[int] = None
        for tick, proof in self.snapshots:
            if (previous_version is not None
                    and proof.program_version != previous_version):
                ticks.append(tick)
            previous_version = proof.program_version
        return ticks
