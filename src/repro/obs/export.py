"""Exporters: the trace log and metrics registry in standard formats.

Three output shapes, all deterministic for a deterministic input:

* :func:`chrome_trace` — the Chrome trace-event JSON format
  (``chrome://tracing`` / Perfetto): complete ``"X"`` events for
  spans, instant ``"i"`` events for span events, microsecond
  timestamps. Spans are emitted in canonical order — a depth-first
  walk from the roots with siblings sorted by
  ``(start, end, name, key, span_id)`` — so serial, thread, and
  process runs of the same seed under a pinned clock export
  byte-identical documents.
* :func:`spans_jsonl` — one JSON object per completed span, same
  canonical order; the grep-friendly shape.
* :func:`prometheus_text` — the metrics registry in Prometheus text
  exposition format (metric names with dots mapped to underscores,
  histogram percentiles as ``quantile`` labels, ``# HELP`` / ``# TYPE``
  per metric, label values escaped per the exposition spec). Pass a
  :class:`~repro.obs.health.HealthPlane` to append its SLI series and
  alert/incident states as labelled gauges.
* :func:`health_jsonl` — the health plane's raw SLI points, alert
  states, and incidents as grep-friendly JSON lines.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.trace import SpanRecord, TraceLog

__all__ = [
    "TRACE_FORMATS", "canonical_spans", "chrome_trace", "spans_jsonl",
    "prometheus_text", "health_jsonl", "export_trace",
]

TRACE_FORMATS = ("chrome", "jsonl", "prom")


def _span_list(spans) -> List[SpanRecord]:
    if isinstance(spans, TraceLog):
        return list(spans.spans)
    return list(spans)


def canonical_spans(spans) -> List[SpanRecord]:
    """Depth-first span order from the roots, siblings in
    ``SpanRecord.sort_key`` order — the backend-invariant ordering all
    exporters share. Spans whose parent is absent from the set (e.g. a
    standalone shard recorder) count as roots."""
    records = _span_list(spans)
    known = {record.span_id for record in records}
    children: Dict[Optional[str], List[SpanRecord]] = {}
    for record in records:
        parent = (record.parent_id
                  if record.parent_id in known else None)
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda record: record.sort_key())
    ordered: List[SpanRecord] = []

    def walk(parent: Optional[str]) -> None:
        for record in children.get(parent, ()):
            ordered.append(record)
            walk(record.span_id)

    walk(None)
    return ordered


def _micros(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace(spans, trace_id: Optional[str] = None,
                 ) -> Dict[str, object]:
    """The Chrome trace-event document (a JSON-ready dict)."""
    records = canonical_spans(spans)
    if trace_id is None and records:
        trace_id = records[0].trace_id
    events: List[Dict[str, object]] = [{
        "ph": "M", "name": "process_name", "pid": 1, "tid": 1,
        "args": {"name": "repro"},
    }]
    for record in records:
        args: Dict[str, object] = {
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "key": record.key,
        }
        args.update(record.attrs)
        events.append({
            "ph": "X",
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ts": _micros(record.start),
            "dur": _micros(record.duration),
            "pid": 1,
            "tid": 1,
            "args": args,
        })
        for event in record.events:
            events.append({
                "ph": "i",
                "s": "t",
                "name": event["name"],
                "cat": "event",
                "ts": _micros(event["ts"]),
                "pid": 1,
                "tid": 1,
                "args": dict(event.get("attrs", {})),
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id or "", "spans": len(records)},
    }


def spans_jsonl(spans) -> str:
    """One canonical-order JSON object per line (trailing newline when
    non-empty)."""
    lines = [json.dumps(record.as_dict(), sort_keys=True)
             for record in canonical_spans(spans)]
    return "\n".join(lines) + ("\n" if lines else "")


# -- Prometheus text exposition -----------------------------------------------

def _prom_name(name: str, suffix: str = "") -> str:
    cleaned = "".join(ch if (ch.isalnum() or ch == "_") else "_"
                      for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"repro_{cleaned}{suffix}"


def _prom_value(value: object) -> str:
    number = float(value)
    if number != number:                                   # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _prom_escape(value: object) -> str:
    """Escape a label value per the exposition format: backslash,
    double quote, and newline (in that order — backslash first, or the
    other escapes would be double-escaped)."""
    return (str(value).replace("\\", "\\\\")
            .replace('"', '\\"').replace("\n", "\\n"))


def _prom_labels(labels: Dict[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_prom_escape(labels[key])}"'
                     for key in labels)
    return "{" + inner + "}"


def _prom_help(metric: str, text: str) -> str:
    # HELP text escapes backslash and newline only (no quote escape —
    # the exposition format differs from label values here).
    escaped = text.replace("\\", "\\\\").replace("\n", "\\n")
    return f"# HELP {metric} {escaped}"


def _emit(lines: List[str], metric: str, kind: str, help_text: str,
          samples: Sequence) -> None:
    """One metric family: HELP, TYPE, then its sample lines — every
    metric kind gets all three (the exposition-format contract)."""
    lines.append(_prom_help(metric, help_text))
    lines.append(f"# TYPE {metric} {kind}")
    for suffix, labels, value in samples:
        lines.append(f"{metric}{suffix}{_prom_labels(labels)}"
                     f" {_prom_value(value)}")


def prometheus_text(registry=None, health=None) -> str:
    """Render the registry snapshot in Prometheus text exposition
    format: ``# HELP`` and ``# TYPE`` for every metric family,
    ``quantile`` labels for the windowed percentiles, label values
    escaped per the spec. ``health`` (a
    :class:`~repro.obs.health.HealthPlane`) appends SLI series
    aggregates and alert/incident states as labelled gauges."""
    if registry is None:
        from repro.obs import get_registry
        registry = get_registry()
    snapshot = registry.snapshot()
    lines: List[str] = []

    for name, value in snapshot.get("counters", {}).items():
        _emit(lines, _prom_name(name, "_total"), "counter",
              f"repro counter {name}", [("", {}, value)])
    for name, value in snapshot.get("gauges", {}).items():
        _emit(lines, _prom_name(name), "gauge",
              f"repro gauge {name}", [("", {}, value)])
    for section in ("histograms", "timers"):
        for name, entry in snapshot.get(section, {}).items():
            metric = _prom_name(name)
            samples = []
            for field, value in entry.items():
                if field.startswith("p") and field[1:].replace(
                        ".", "", 1).isdigit():
                    quantile = float(field[1:]) / 100.0
                    samples.append(
                        ("", {"quantile": f"{quantile:g}"}, value))
            samples.append(("_sum", {}, entry["sum"]))
            samples.append(("_count", {}, entry["count"]))
            _emit(lines, metric, "summary",
                  f"repro {section[:-1]} {name}", samples)
    if health is not None:
        _append_health_prom(lines, health)
    return "\n".join(lines) + ("\n" if lines else "")


def _append_health_prom(lines: List[str], health) -> None:
    """The health plane's exposition families (deterministic order)."""
    _emit(lines, "repro_health_ok", "gauge",
          "health plane SLO gate (1 = nothing firing, no open incident)",
          [("", {}, 1.0 if health.ok else 0.0)])
    sli_samples = []
    for name in sorted(health.series):
        summary = health.series[name].summary()
        for stat in ("last", "mean", "min", "max"):
            sli_samples.append(
                ("", {"sli": name, "stat": stat}, summary[stat]))
    if sli_samples:
        _emit(lines, "repro_health_sli", "gauge",
              "SLI series aggregates over retained points", sli_samples)
    firing, fires, values = [], [], []
    for state in health.states:
        labels = {"slo": state.slo.name, "rule_id": state.rule_id,
                  "severity": state.rule.severity}
        firing.append(("", labels, 1.0 if state.state == "firing"
                       else 0.0))
        fires.append(("", labels, state.fires))
        values.append(("", labels, state.last_value))
    if firing:
        _emit(lines, "repro_health_alert_firing", "gauge",
              "alert rule state (1 = firing)", firing)
        _emit(lines, "repro_health_alert_fires_total", "counter",
              "ok->firing transitions of the rule", fires)
        _emit(lines, "repro_health_alert_value", "gauge",
              "last evaluated rule value (burn rate or windowed mean)",
              values)
    _emit(lines, "repro_health_incidents_open", "gauge",
          "incidents currently open",
          [("", {}, len(health.open_incidents()))])
    _emit(lines, "repro_health_incidents_total", "counter",
          "incidents ever opened", [("", {}, len(health.incidents))])


def health_jsonl(health) -> str:
    """The health plane as JSON lines: every retained SLI point, every
    alert state, every incident — sorted, canonical, greppable."""
    lines: List[str] = []
    for name in sorted(health.series):
        for x, y in health.series[name].points:
            lines.append(json.dumps(
                {"kind": "sli", "series": name, "x": x, "y": y},
                sort_keys=True))
    for state in health.states:
        lines.append(json.dumps({"kind": "alert", **state.as_dict()},
                                sort_keys=True))
    for incident in health.incidents:
        lines.append(json.dumps(
            {"kind": "incident", **incident.as_dict()}, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def export_trace(spans, fmt: str, registry=None) -> str:
    """Render ``spans`` (or, for ``prom``, the registry) as the named
    format's document text."""
    if fmt == "chrome":
        return json.dumps(chrome_trace(spans), sort_keys=True, indent=2)
    if fmt == "jsonl":
        return spans_jsonl(spans)
    if fmt == "prom":
        return prometheus_text(registry)
    raise ValueError(
        f"unknown trace format {fmt!r}; expected one of"
        f" {', '.join(TRACE_FORMATS)}")
