"""Exporters: the trace log and metrics registry in standard formats.

Three output shapes, all deterministic for a deterministic input:

* :func:`chrome_trace` — the Chrome trace-event JSON format
  (``chrome://tracing`` / Perfetto): complete ``"X"`` events for
  spans, instant ``"i"`` events for span events, microsecond
  timestamps. Spans are emitted in canonical order — a depth-first
  walk from the roots with siblings sorted by
  ``(start, end, name, key, span_id)`` — so serial, thread, and
  process runs of the same seed under a pinned clock export
  byte-identical documents.
* :func:`spans_jsonl` — one JSON object per completed span, same
  canonical order; the grep-friendly shape.
* :func:`prometheus_text` — the metrics registry in Prometheus text
  exposition format (metric names with dots mapped to underscores,
  histogram percentiles as ``quantile`` labels).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.trace import SpanRecord, TraceLog

__all__ = [
    "TRACE_FORMATS", "canonical_spans", "chrome_trace", "spans_jsonl",
    "prometheus_text", "export_trace",
]

TRACE_FORMATS = ("chrome", "jsonl", "prom")


def _span_list(spans) -> List[SpanRecord]:
    if isinstance(spans, TraceLog):
        return list(spans.spans)
    return list(spans)


def canonical_spans(spans) -> List[SpanRecord]:
    """Depth-first span order from the roots, siblings in
    ``SpanRecord.sort_key`` order — the backend-invariant ordering all
    exporters share. Spans whose parent is absent from the set (e.g. a
    standalone shard recorder) count as roots."""
    records = _span_list(spans)
    known = {record.span_id for record in records}
    children: Dict[Optional[str], List[SpanRecord]] = {}
    for record in records:
        parent = (record.parent_id
                  if record.parent_id in known else None)
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda record: record.sort_key())
    ordered: List[SpanRecord] = []

    def walk(parent: Optional[str]) -> None:
        for record in children.get(parent, ()):
            ordered.append(record)
            walk(record.span_id)

    walk(None)
    return ordered


def _micros(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace(spans, trace_id: Optional[str] = None,
                 ) -> Dict[str, object]:
    """The Chrome trace-event document (a JSON-ready dict)."""
    records = canonical_spans(spans)
    if trace_id is None and records:
        trace_id = records[0].trace_id
    events: List[Dict[str, object]] = [{
        "ph": "M", "name": "process_name", "pid": 1, "tid": 1,
        "args": {"name": "repro"},
    }]
    for record in records:
        args: Dict[str, object] = {
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "key": record.key,
        }
        args.update(record.attrs)
        events.append({
            "ph": "X",
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ts": _micros(record.start),
            "dur": _micros(record.duration),
            "pid": 1,
            "tid": 1,
            "args": args,
        })
        for event in record.events:
            events.append({
                "ph": "i",
                "s": "t",
                "name": event["name"],
                "cat": "event",
                "ts": _micros(event["ts"]),
                "pid": 1,
                "tid": 1,
                "args": dict(event.get("attrs", {})),
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id or "", "spans": len(records)},
    }


def spans_jsonl(spans) -> str:
    """One canonical-order JSON object per line (trailing newline when
    non-empty)."""
    lines = [json.dumps(record.as_dict(), sort_keys=True)
             for record in canonical_spans(spans)]
    return "\n".join(lines) + ("\n" if lines else "")


# -- Prometheus text exposition -----------------------------------------------

def _prom_name(name: str, suffix: str = "") -> str:
    cleaned = "".join(ch if (ch.isalnum() or ch == "_") else "_"
                      for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"repro_{cleaned}{suffix}"


def _prom_value(value: object) -> str:
    number = float(value)
    if number != number:                                   # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_text(registry=None) -> str:
    """Render the registry snapshot in Prometheus text exposition
    format (``# TYPE`` comments, ``quantile`` labels for the windowed
    percentiles)."""
    if registry is None:
        from repro.obs import get_registry
        registry = get_registry()
    snapshot = registry.snapshot()
    lines: List[str] = []

    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for section in ("histograms", "timers"):
        for name, entry in snapshot.get(section, {}).items():
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} summary")
            for field, value in entry.items():
                if field.startswith("p") and field[1:].replace(
                        ".", "", 1).isdigit():
                    quantile = float(field[1:]) / 100.0
                    lines.append(f'{metric}{{quantile="{quantile:g}"}}'
                                 f" {_prom_value(value)}")
            lines.append(f"{metric}_sum {_prom_value(entry['sum'])}")
            lines.append(f"{metric}_count {_prom_value(entry['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def export_trace(spans, fmt: str, registry=None) -> str:
    """Render ``spans`` (or, for ``prom``, the registry) as the named
    format's document text."""
    if fmt == "chrome":
        return json.dumps(chrome_trace(spans), sort_keys=True, indent=2)
    if fmt == "jsonl":
        return spans_jsonl(spans)
    if fmt == "prom":
        return prometheus_text(registry)
    raise ValueError(
        f"unknown trace format {fmt!r}; expected one of"
        f" {', '.join(TRACE_FORMATS)}")
