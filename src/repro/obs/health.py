"""The health plane: deterministic SLOs, burn-rate alerts, incidents.

``repro.obs`` answers *how much*, ``repro.obs.trace`` answers *where*;
this module answers **"is the service healthy, and if not, what broke
and when"** — the layer an always-on SoftBorg deployment operates by.
Three pieces, all driven by the virtual clock (integer ticks in serve
mode, round indices in batch mode), all pure functions of their
inputs:

1. **SLI time-series.** Each service-level indicator is a bounded
   :class:`~repro.metrics.series.Series` (rolling retention, tumbling
   rollups) fed one sample per tick by the host loop — ingest lag,
   admission reject ratio, pump backpressure and drop ratios,
   pod-ready ratio, hive solver hit rate, per-family detection rate.
   When the health plane is disabled nothing is constructed: the host
   pays one ``is None`` per tick and the obs registry gains zero
   metrics (the E22 benchmark pins this).

2. **A declarative alert engine.** An :class:`SloSpec` names an SLI
   and an objective; its :class:`AlertRule`\\ s are either *threshold*
   rules (windowed mean compared against the objective) or
   multi-window *error-budget burn-rate* rules (the Google-SRE
   construction: with budget ``1 - objective``, the burn rate over a
   window is ``window_mean(bad_ratio) / budget``; the rule fires when
   both the long and the short window burn faster than the rule's
   multiplier). Rules evaluate every tick in a fixed order (SLO name,
   then rule id); rule ids, alert ids, and incident ids are
   **content-derived** blake2b digests of their coordinates, so
   serial/thread/process runs at a fixed seed — chaos included —
   produce byte-identical health reports.

3. **Incident timelines.** The first rule of an SLO to transition
   ``ok -> firing`` opens an :class:`Incident` (stable content-derived
   id) that snapshots the correlating in-window evidence handed in by
   the host loop: chaos injections, autoscaler decisions,
   control-plane phase transitions, fired invariants, a
   flight-recorder slice, and the worst tick's stats and span id. The
   incident closes with a resolution record when every rule of the
   SLO has recovered.

See docs/OBSERVABILITY.md ("The health plane") for the SLO spec
format, the burn-rate math, and the determinism guarantees.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.metrics.series import Series

__all__ = [
    "HEALTH_SCHEMA_VERSION", "ALERT_OK", "ALERT_FIRING",
    "AlertRule", "SloSpec", "AlertState", "Incident", "TickEvidence",
    "HealthConfig", "HealthPlane", "burn_rate",
    "parse_slo_overrides",
]

#: Version of the ``health`` snapshot block (serve schema v2 embeds
#: v1; the platform snapshot adds it additively under schema v3).
HEALTH_SCHEMA_VERSION = 1

ALERT_OK = "ok"
ALERT_FIRING = "firing"

_RULE_KINDS = ("threshold", "burn_rate")
_DIRECTIONS = ("upper", "lower")


def _content_id(*parts: object) -> str:
    """Stable 16-hex-char id from a coordinate path (mirrors the span
    id construction in :mod:`repro.obs.trace`)."""
    digest = hashlib.blake2b(
        "|".join(repr(part) for part in parts).encode("utf-8"),
        digest_size=8)
    return digest.hexdigest()


def burn_rate(values: Sequence[float], budget: float) -> float:
    """Error-budget burn rate of a window of bad-event ratios.

    ``mean(values) / budget``: 1.0 means the window consumes budget
    exactly as fast as the objective allows; N means N times faster.
    Scale-invariant in the budget (``burn(v, k*b) == burn(v, b) / k``,
    pinned by a hypothesis property). An empty window burns nothing; a
    zero/negative budget burns infinitely fast as soon as anything is
    bad at all.
    """
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if budget <= 0.0:
        return float("inf") if mean > 0.0 else 0.0
    return mean / budget


@dataclass(frozen=True)
class AlertRule:
    """One deterministic alerting rule attached to an SLO.

    ``threshold`` rules fire when the windowed SLI mean violates the
    SLO objective (scaled by ``threshold``, default 1.0 — set 0.8 for
    an early-warning ticket rule). ``burn_rate`` rules treat the SLI
    as a bad-event ratio in [0, 1] and fire when the error budget
    (``1 - objective``) burns at ``threshold``\\ x or faster over the
    long window **and** (when ``short_window_ticks`` > 0) the short
    window — the multi-window construction that keeps a recovered
    service from paging on stale badness.
    """

    kind: str = "threshold"
    window_ticks: int = 8
    threshold: float = 1.0
    short_window_ticks: int = 0
    min_samples: int = 1
    severity: str = "page"

    def validate(self) -> None:
        if self.kind not in _RULE_KINDS:
            raise ConfigError(
                f"alert rule kind must be one of {', '.join(_RULE_KINDS)}")
        if self.window_ticks < 1:
            raise ConfigError("window_ticks must be >= 1")
        if self.short_window_ticks < 0:
            raise ConfigError("short_window_ticks must be >= 0")
        if self.short_window_ticks > self.window_ticks:
            raise ConfigError(
                "short_window_ticks must be <= window_ticks")
        if self.threshold <= 0:
            raise ConfigError("rule threshold must be > 0")
        if self.min_samples < 1:
            raise ConfigError("min_samples must be >= 1")

    def rule_id(self, slo_name: str) -> str:
        """Content-derived: identical rule coordinates => identical id
        on every backend, in every process."""
        return _content_id("rule", slo_name, self.kind,
                           self.window_ticks, self.short_window_ticks,
                           self.threshold, self.min_samples,
                           self.severity)

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "window_ticks": self.window_ticks,
            "short_window_ticks": self.short_window_ticks,
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "severity": self.severity,
        }


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over one SLI series.

    ``direction`` gives the healthy side of ``objective`` for
    threshold rules: ``upper`` means the SLI must stay <= objective
    (ingest lag), ``lower`` means >= (pod-ready ratio). Burn-rate
    rules ignore direction — their SLI is a bad-event ratio and
    ``objective`` is the good fraction (0 < objective < 1).
    """

    name: str
    sli: str
    objective: float
    direction: str = "upper"
    description: str = ""
    rules: Tuple[AlertRule, ...] = (AlertRule(),)

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("an SLO needs a name")
        if not self.sli:
            raise ConfigError(f"SLO {self.name!r} needs an SLI series")
        if self.direction not in _DIRECTIONS:
            raise ConfigError(
                f"SLO direction must be one of {', '.join(_DIRECTIONS)}")
        if not self.rules:
            raise ConfigError(f"SLO {self.name!r} needs >= 1 alert rule")
        for rule in self.rules:
            rule.validate()
            if rule.kind == "burn_rate" and not 0.0 < self.objective < 1.0:
                raise ConfigError(
                    f"SLO {self.name!r} has a burn-rate rule, so its"
                    f" objective must be a good fraction in (0, 1)")

    @property
    def budget(self) -> float:
        """The error budget burn-rate rules consume (1 - objective)."""
        return 1.0 - self.objective

    def with_objective(self, objective: float) -> "SloSpec":
        """The same SLO at a different target (``--slo NAME=TARGET``)."""
        return replace(self, objective=objective)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "sli": self.sli,
            "objective": self.objective,
            "direction": self.direction,
            "description": self.description,
            "rules": [rule.as_dict() for rule in self.rules],
        }


def parse_slo_overrides(pairs: Sequence[str]) -> Dict[str, float]:
    """Parse repeated ``NAME=TARGET`` CLI arguments into overrides."""
    overrides: Dict[str, float] = {}
    for pair in pairs:
        name, sep, target = pair.partition("=")
        if not sep or not name:
            raise ConfigError(
                f"--slo expects NAME=TARGET, got {pair!r}")
        try:
            overrides[name] = float(target)
        except ValueError:
            raise ConfigError(
                f"--slo {name}: target {target!r} is not a number")
    return overrides


@dataclass
class TickEvidence:
    """What the host loop observed this tick, kept for correlation.

    The health plane retains the last ``evidence_window_ticks`` of
    these; when an incident opens, the in-window lists are merged into
    its evidence block. All fields are plain JSON-ready data the host
    already produced — building one is list copies, no recomputation.
    """

    tick: int
    chaos: List[Dict[str, object]] = field(default_factory=list)
    scaling: List[Dict[str, object]] = field(default_factory=list)
    fleet: List[Dict[str, object]] = field(default_factory=list)
    invariants: List[Dict[str, object]] = field(default_factory=list)
    span_id: str = ""
    stats: Dict[str, object] = field(default_factory=dict)


@dataclass
class AlertState:
    """The evaluated state of one (SLO, rule) pair."""

    slo: SloSpec
    rule: AlertRule
    rule_id: str
    state: str = ALERT_OK
    alert_id: str = ""            # of the currently-firing alert
    fires: int = 0
    last_value: float = 0.0
    transitions: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "slo": self.slo.name,
            "rule_id": self.rule_id,
            "rule": self.rule.as_dict(),
            "state": self.state,
            "alert_id": self.alert_id,
            "fires": self.fires,
            "last_value": self.last_value,
            "transitions": [dict(t) for t in self.transitions],
        }


@dataclass
class Incident:
    """One named outage window with its correlated evidence."""

    incident_id: str
    slo: str
    sli: str
    rule_id: str
    alert_id: str
    severity: str
    opened_tick: int
    value: float
    threshold: float
    evidence: Dict[str, object] = field(default_factory=dict)
    closed_tick: Optional[int] = None
    resolution: Optional[Dict[str, object]] = None

    @property
    def open(self) -> bool:
        return self.closed_tick is None

    def as_dict(self) -> Dict[str, object]:
        return {
            "incident_id": self.incident_id,
            "slo": self.slo,
            "sli": self.sli,
            "rule_id": self.rule_id,
            "alert_id": self.alert_id,
            "severity": self.severity,
            "opened_tick": self.opened_tick,
            "value": self.value,
            "threshold": self.threshold,
            "open": self.open,
            "closed_tick": self.closed_tick,
            "resolution": (dict(self.resolution)
                           if self.resolution else None),
            "evidence": dict(self.evidence),
        }


@dataclass
class HealthConfig:
    """Knobs of the health plane (serve defaults on, bare runs off)."""

    enabled: bool = True
    #: Retention bound per SLI series (rolling; evictions counted).
    series_max_points: int = 512
    #: Ticks of host evidence retained for incident correlation.
    evidence_window_ticks: int = 16
    #: Flight-recorder events snapshotted into incident evidence.
    flight_slice_limit: int = 32
    #: ``{slo_name: objective}`` replacing default targets
    #: (``repro serve --slo NAME=TARGET``).
    slo_overrides: Dict[str, float] = field(default_factory=dict)

    def validate(self) -> None:
        if self.series_max_points < 1:
            raise ConfigError("series_max_points must be >= 1")
        if self.evidence_window_ticks < 1:
            raise ConfigError("evidence_window_ticks must be >= 1")
        if self.flight_slice_limit < 0:
            raise ConfigError("flight_slice_limit must be >= 0")


class HealthPlane:
    """SLI store + alert engine + incident log for one host loop.

    The host calls :meth:`observe` once per tick with that tick's SLI
    samples (and optionally a :class:`TickEvidence`); everything else
    — rule evaluation, alert transitions, incident lifecycle — happens
    inside, deterministically. ``flight`` may be the host tracer's
    :class:`~repro.obs.trace.FlightRecorder` (or ``None``); incidents
    snapshot its tail when present.
    """

    def __init__(self, slos: Sequence[SloSpec],
                 config: Optional[HealthConfig] = None,
                 flight=None):
        self.config = config or HealthConfig()
        self.config.validate()
        self.flight = flight
        resolved: List[SloSpec] = []
        seen = set()
        for slo in slos:
            if slo.name in seen:
                raise ConfigError(f"duplicate SLO name {slo.name!r}")
            seen.add(slo.name)
            override = self.config.slo_overrides.get(slo.name)
            if override is not None:
                slo = slo.with_objective(override)
            slo.validate()
            resolved.append(slo)
        unknown = set(self.config.slo_overrides) - seen
        if unknown:
            raise ConfigError(
                f"--slo names no known SLO: {', '.join(sorted(unknown))}"
                f" (have: {', '.join(sorted(seen))})")
        #: Evaluation order is part of the contract: SLO name, then
        #: rule id — never construction or dict order.
        self.slos: List[SloSpec] = sorted(resolved,
                                          key=lambda slo: slo.name)
        self.states: List[AlertState] = []
        for slo in self.slos:
            states = [AlertState(slo=slo, rule=rule,
                                 rule_id=rule.rule_id(slo.name))
                      for rule in slo.rules]
            states.sort(key=lambda state: state.rule_id)
            self.states.extend(states)
        self.series: Dict[str, Series] = {}
        self.incidents: List[Incident] = []
        self._open_by_slo: Dict[str, Incident] = {}
        self._evidence: List[TickEvidence] = []
        self._worst: Dict[str, Tuple[float, int]] = {}
        self.ticks_observed = 0

    # -- feeding ------------------------------------------------------------

    def _series(self, name: str) -> Series:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = Series(
                name, max_points=self.config.series_max_points)
        return series

    def observe(self, tick: int, sample: Mapping[str, float],
                evidence: Optional[TickEvidence] = None) -> None:
        """Feed one tick: record SLIs, evaluate rules, update incidents."""
        self.ticks_observed += 1
        for name in sorted(sample):
            self._series(name).record(tick, sample[name])
        for slo in self.slos:
            if slo.sli not in sample:
                continue
            value = float(sample[slo.sli])
            worst = self._worst.get(slo.name)
            lower = slo.direction == "lower"
            if (worst is None
                    or ((value < worst[0]) if lower
                        else (value > worst[0]))):
                self._worst[slo.name] = (value, tick)
        self._evidence.append(evidence if evidence is not None
                              else TickEvidence(tick=tick))
        if len(self._evidence) > self.config.evidence_window_ticks:
            del self._evidence[0]
        self._evaluate(tick)

    # -- rule evaluation ----------------------------------------------------

    def _rule_value(self, slo: SloSpec, rule: AlertRule,
                    series: Series) -> Tuple[float, float, bool]:
        """(value, effective threshold, violated) for one rule."""
        if rule.kind == "burn_rate":
            long_burn = burn_rate(series.window(rule.window_ticks),
                                  slo.budget)
            violated = long_burn >= rule.threshold
            if violated and rule.short_window_ticks:
                short_burn = burn_rate(
                    series.window(rule.short_window_ticks), slo.budget)
                violated = short_burn >= rule.threshold
            return long_burn, rule.threshold, violated
        value = series.window_mean(rule.window_ticks)
        bound = slo.objective * rule.threshold
        if slo.direction == "upper":
            return value, bound, value > bound
        return value, bound, value < bound

    def _evaluate(self, tick: int) -> None:
        for state in self.states:
            series = self.series.get(state.slo.sli)
            if series is None or len(series) < state.rule.min_samples:
                continue
            value, bound, violated = self._rule_value(
                state.slo, state.rule, series)
            state.last_value = value
            if violated and state.state == ALERT_OK:
                state.state = ALERT_FIRING
                state.fires += 1
                state.alert_id = _content_id("alert", state.rule_id, tick)
                state.transitions.append({
                    "tick": tick, "to": ALERT_FIRING,
                    "alert_id": state.alert_id, "value": value,
                    "threshold": bound,
                })
                self._maybe_open_incident(state, tick, value, bound)
            elif not violated and state.state == ALERT_FIRING:
                state.state = ALERT_OK
                state.transitions.append({
                    "tick": tick, "to": ALERT_OK,
                    "alert_id": state.alert_id, "value": value,
                    "threshold": bound,
                })
                state.alert_id = ""
        self._maybe_close_incidents(tick)

    # -- incidents ----------------------------------------------------------

    def _maybe_open_incident(self, state: AlertState, tick: int,
                             value: float, bound: float) -> None:
        slo = state.slo
        if slo.name in self._open_by_slo:
            return
        incident = Incident(
            incident_id=_content_id("incident", slo.name, state.rule_id,
                                    state.alert_id, tick),
            slo=slo.name,
            sli=slo.sli,
            rule_id=state.rule_id,
            alert_id=state.alert_id,
            severity=state.rule.severity,
            opened_tick=tick,
            value=value,
            threshold=bound,
            evidence=self._collect_evidence(slo, state.rule, tick),
        )
        self.incidents.append(incident)
        self._open_by_slo[slo.name] = incident

    def _maybe_close_incidents(self, tick: int) -> None:
        for slo_name in sorted(self._open_by_slo):
            if any(state.state == ALERT_FIRING for state in self.states
                   if state.slo.name == slo_name):
                continue
            incident = self._open_by_slo.pop(slo_name)
            series = self.series.get(incident.sli)
            incident.closed_tick = tick
            incident.resolution = {
                "closed_tick": tick,
                "duration_ticks": tick - incident.opened_tick,
                "recovered_value": (series.last()[1]
                                    if series is not None and len(series)
                                    else 0.0),
            }

    def _collect_evidence(self, slo: SloSpec, rule: AlertRule,
                          tick: int) -> Dict[str, object]:
        """Merge the retained in-window host context into one block."""
        window_start = tick - self.config.evidence_window_ticks + 1
        chaos: List[Dict[str, object]] = []
        scaling: List[Dict[str, object]] = []
        fleet: List[Dict[str, object]] = []
        invariants: List[Dict[str, object]] = []
        span_by_tick: Dict[int, str] = {}
        stats_by_tick: Dict[int, Dict[str, object]] = {}
        for entry in self._evidence:
            chaos.extend(dict(event) for event in entry.chaos)
            scaling.extend(dict(event) for event in entry.scaling)
            fleet.extend(dict(event) for event in entry.fleet)
            invariants.extend(dict(event) for event in entry.invariants)
            if entry.span_id:
                span_by_tick[entry.tick] = entry.span_id
            if entry.stats:
                stats_by_tick[entry.tick] = entry.stats
        worst_tick, worst_value = self._worst_in_window(slo, rule, tick)
        evidence: Dict[str, object] = {
            "window": {"from_tick": window_start, "to_tick": tick},
            "chaos": chaos,
            "scaling": scaling,
            "fleet": fleet,
            "invariants": invariants,
            "worst_tick": {
                "tick": worst_tick,
                "value": worst_value,
                "span_id": span_by_tick.get(worst_tick, ""),
                "stats": dict(stats_by_tick.get(worst_tick, {})),
            },
        }
        if self.flight is not None:
            evidence["flight_recorder"] = self.flight.slice(
                limit=self.config.flight_slice_limit)
        return evidence

    def _worst_in_window(self, slo: SloSpec, rule: AlertRule,
                         tick: int) -> Tuple[int, float]:
        """The (tick, value) of the worst SLI sample in the rule's
        window — ties break toward the earliest tick."""
        series = self.series.get(slo.sli)
        if series is None or not len(series):
            return tick, 0.0
        points = series.window_points(rule.window_ticks)
        lower = slo.direction == "lower"
        worst_x, worst_y = points[0]
        for x, y in points[1:]:
            if (y < worst_y) if lower else (y > worst_y):
                worst_x, worst_y = x, y
        return int(worst_x), worst_y

    # -- export -------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """The SLO gate: nothing firing, no incident still open."""
        return (not self._open_by_slo
                and all(state.state == ALERT_OK for state in self.states))

    def open_incidents(self) -> List[Incident]:
        return [incident for incident in self.incidents if incident.open]

    def slo_rows(self) -> List[Dict[str, object]]:
        rows = []
        for slo in self.slos:
            states = [state for state in self.states
                      if state.slo.name == slo.name]
            worst = self._worst.get(slo.name)
            rows.append({
                **slo.as_dict(),
                "ok": all(state.state == ALERT_OK for state in states),
                "fires": sum(state.fires for state in states),
                "worst": ({"value": worst[0], "tick": worst[1]}
                          if worst else None),
            })
        return rows

    def report(self) -> Dict[str, object]:
        """The deterministic ``health`` snapshot block (JSON-ready)."""
        return {
            "health_schema_version": HEALTH_SCHEMA_VERSION,
            "ok": self.ok,
            "ticks_observed": self.ticks_observed,
            "slos": self.slo_rows(),
            "alerts": [state.as_dict() for state in self.states],
            "incidents": [incident.as_dict()
                          for incident in self.incidents],
            "series": {name: self.series[name].summary()
                       for name in sorted(self.series)},
        }
