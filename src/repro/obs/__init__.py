"""repro.obs — the platform's own observability layer.

Counters, gauges, histograms, and timed spans behind a process-local
:class:`Registry` with a zero-overhead no-op mode and deterministic
snapshot export. See ``docs/API.md`` ("repro.obs — observability").
"""

from repro.obs.health import (
    HEALTH_SCHEMA_VERSION,
    AlertRule,
    HealthConfig,
    HealthPlane,
    Incident,
    SloSpec,
    TickEvidence,
    burn_rate,
    parse_slo_overrides,
)
from repro.obs.instrument import Instrumented
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Span,
    Timer,
    disable,
    enable,
    get_registry,
    reset,
    set_registry,
    span,
    timed,
)
from repro.obs.trace import (
    FixedClock,
    FlightRecorder,
    SpanContext,
    SpanRecord,
    SpanRecorder,
    TraceLog,
    Tracer,
    derive_trace_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "Timer", "Span", "Registry",
    "Instrumented", "NULL_REGISTRY",
    "get_registry", "set_registry", "enable", "disable", "reset",
    "span", "timed",
    "Tracer", "TraceLog", "SpanRecord", "SpanContext", "SpanRecorder",
    "FlightRecorder", "FixedClock", "derive_trace_id",
    "get_tracer", "set_tracer", "enable_tracing", "disable_tracing",
    "HealthPlane", "HealthConfig", "SloSpec", "AlertRule", "Incident",
    "TickEvidence", "burn_rate", "parse_slo_overrides",
    "HEALTH_SCHEMA_VERSION",
]
