"""repro.obs — the platform's own observability layer.

Counters, gauges, histograms, and timed spans behind a process-local
:class:`Registry` with a zero-overhead no-op mode and deterministic
snapshot export. See ``docs/API.md`` ("repro.obs — observability").
"""

from repro.obs.instrument import Instrumented
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Span,
    Timer,
    disable,
    enable,
    get_registry,
    reset,
    set_registry,
    span,
    timed,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "Timer", "Span", "Registry",
    "Instrumented", "NULL_REGISTRY",
    "get_registry", "set_registry", "enable", "disable", "reset",
    "span", "timed",
]
