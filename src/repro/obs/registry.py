"""Process-local metrics registry: the platform's observability spine.

SoftBorg's thesis is that by-products of execution are worth
collecting; ``repro.obs`` applies that thesis to the platform itself.
Every layer (pods, capture, transport, hive, solvers, symbolic engine)
registers *handles* — counters, gauges, histograms, timed spans — on a
process-local :class:`Registry` and bumps them on the hot path. A run
can then answer "traces/sec ingested, p50/p95 round latency, where did
the wall-clock go" from one deterministic snapshot.

Design constraints, in order:

1. **Cheap when on.** A handle is resolved once (at component
   construction) and updating it is one attribute add. No string
   formatting, no locks, no allocation on the counter path.
2. **Free when off.** ``disable()`` swaps handle *creation* to shared
   no-op singletons whose methods do nothing; components built while
   the registry is disabled carry zero bookkeeping. Benchmarks run in
   this mode so measured numbers are not polluted by metrology.
3. **Deterministic export.** ``snapshot()`` orders every metric by
   name; value-histograms over seeded workloads reproduce bit-for-bit.
   Span timings use an injectable clock so tests can pin time itself.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "Counter", "Gauge", "Histogram", "Timer", "Span",
    "Registry", "NULL_REGISTRY",
    "get_registry", "set_registry", "enable", "disable", "reset",
    "timed", "span",
]

Clock = Callable[[], float]

_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


def _percentile(ordered: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      int(round(pct / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"value": self.value}


class Gauge:
    """Last-write-wins instantaneous level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> Dict[str, object]:
        return {"value": self.value}


class Histogram:
    """Streaming aggregates plus a bounded value window for percentiles.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    percentiles come from the retained window (a deterministic ring
    buffer of the most recent ``window`` values), which is the standard
    bounded-memory trade-off.
    """

    __slots__ = ("name", "unit", "count", "total", "min", "max",
                 "_window", "_values", "_cursor")

    def __init__(self, name: str, unit: str = "", window: int = 4096):
        self.name = name
        self.unit = unit
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._window = window
        self._values: List[float] = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._values) < self._window:
            self._values.append(value)
        else:
            self._values[self._cursor] = value
            self._cursor = (self._cursor + 1) % self._window

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        return _percentile(sorted(self._values), pct)

    def as_dict(self) -> Dict[str, object]:
        ordered = sorted(self._values)
        entry: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            # Provenance of the percentiles below: they are computed
            # over the retained ring of the last ``window_count``
            # observations (<= ``window``), while count/sum/min/max are
            # exact over all of them.
            "window": self._window,
            "window_count": len(self._values),
        }
        for pct in _PERCENTILES:
            entry[f"p{pct:g}"] = _percentile(ordered, pct)
        if self.unit:
            entry["unit"] = self.unit
        return entry


class Span:
    """One timed section; ``with timer.time(): ...`` on the hot path."""

    __slots__ = ("_histogram", "_clock", "_start")

    def __init__(self, histogram: "Histogram", clock: Clock):
        self._histogram = histogram
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = self._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(self._clock() - self._start)


class Timer:
    """A histogram of elapsed seconds with a span factory."""

    __slots__ = ("name", "histogram", "_clock")

    def __init__(self, name: str, clock: Clock):
        self.name = name
        self.histogram = Histogram(name, unit="seconds")
        self._clock = clock

    def time(self) -> Span:
        return Span(self.histogram, self._clock)

    def observe(self, seconds: float) -> None:
        self.histogram.observe(seconds)

    def as_dict(self) -> Dict[str, object]:
        return self.histogram.as_dict()


class _NullCounter:
    """Shared do-nothing stand-ins handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:
        return {"value": 0}


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:
        return {"value": 0.0}


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    unit = ""
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, pct: float) -> float:
        return 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"count": 0}


class _NullTimer:
    __slots__ = ()
    name = "null"
    histogram = _NullHistogram()

    def time(self) -> _NullSpan:
        return _NULL_SPAN

    def observe(self, seconds: float) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:
        return {"count": 0}


_NULL_SPAN = _NullSpan()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()


class Registry:
    """Get-or-create named metrics; export one deterministic snapshot."""

    def __init__(self, enabled: bool = True,
                 clock: Optional[Clock] = None):
        self._enabled = enabled
        self._clock: Clock = clock or time.perf_counter
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}

    # -- lifecycle ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        """Hand out no-op handles from now on.

        Metrics already resolved keep recording into this registry (a
        handle is just an object reference); components constructed
        after ``disable()`` pay nothing.
        """
        self._enabled = False

    def reset(self) -> None:
        """Drop every metric (new handles required afterwards)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._timers.clear()

    # -- handle resolution --------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self._enabled:
            return _NULL_COUNTER
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        if not self._enabled:
            return _NULL_GAUGE
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, unit: str = "",
                  window: int = 4096) -> Histogram:
        if not self._enabled:
            return _NULL_HISTOGRAM
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(
                name, unit=unit, window=window)
        return metric

    def timer(self, name: str) -> Timer:
        if not self._enabled:
            return _NULL_TIMER
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = Timer(name, self._clock)
        return metric

    def span(self, name: str) -> Span:
        """One-off timed section against the named timer."""
        return self.timer(name).time()

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every metric, name-sorted, as plain JSON-ready dicts."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].as_dict()
                           for name in sorted(self._histograms)},
            "timers": {name: self._timers[name].as_dict()
                       for name in sorted(self._timers)},
        }

    def as_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    def render(self) -> str:
        """The snapshot as monospace tables (CLI ``repro stats``)."""
        from repro.metrics.report import render_table
        snapshot = self.snapshot()
        sections: List[str] = []
        scalar_rows = (
            [[name, value] for name, value in snapshot["counters"].items()]
            + [[name, float(value)]
               for name, value in snapshot["gauges"].items()])
        if scalar_rows:
            sections.append(render_table(
                ["metric", "value"], scalar_rows, title="counters/gauges"))
        dist_rows = []
        for section in ("histograms", "timers"):
            for name, entry in snapshot[section].items():
                dist_rows.append([
                    name, entry.get("count", 0),
                    float(entry.get("mean", 0.0)),
                    float(entry.get("p50", 0.0)),
                    float(entry.get("p95", 0.0)),
                    float(entry.get("max", 0.0)),
                    entry.get("unit", "seconds"
                              if section == "timers" else ""),
                ])
        if dist_rows:
            sections.append(render_table(
                ["distribution", "count", "mean", "p50", "p95", "max",
                 "unit"],
                dist_rows, title="histograms/timers"))
        return "\n\n".join(sections) if sections else "(no metrics)"


NULL_REGISTRY = Registry(enabled=False)

_default_registry = Registry()


def get_registry() -> Registry:
    """The process-local registry every component resolves handles on."""
    return _default_registry


def set_registry(registry: Registry) -> Registry:
    """Swap the process-local registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def enable() -> None:
    _default_registry.enable()


def disable() -> None:
    _default_registry.disable()


def reset() -> None:
    _default_registry.reset()


def span(name: str) -> Span:
    """``with obs.span("hive.phase.replay"): ...``"""
    return _default_registry.span(name)


def timed(name: str) -> Callable:
    """Decorator: record the wrapped callable's wall time as a span.

    The timer handle is resolved per call against the *current*
    process-local registry, so ``disable()``/``set_registry()`` take
    effect without re-decorating.
    """
    def decorate(func: Callable) -> Callable:
        import functools

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with _default_registry.span(name):
                return func(*args, **kwargs)
        return wrapper
    return decorate
