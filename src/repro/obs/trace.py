"""Causal span tracing: where did the round actually go?

``repro.obs`` counters answer *how much*; this module answers *where
and in what order*. A :class:`Tracer` records **spans** — named,
timed, attributed sections arranged in a parent/child tree — into a
per-run :class:`TraceLog`, with the trace context propagated across
every platform seam:

* ``SoftBorgPlatform`` opens a root span per round (plan / execute /
  deliver / fix children);
* execution backends hand each shard a :class:`SpanContext`; the shard
  records its spans into a local :class:`SpanRecorder` and ships them
  back inside its :class:`~repro.exec.batch.ShardResult`, so thread
  and process runs graft into one coherent tree;
* ``TraceBatch`` wire frames and ``net.transport`` messages carry the
  ``(trace_id, span_id)`` context, so hive-side ingest spans parent
  under the sender's span even across the (simulated) Internet;
* chaos fault injections and invariant violations land as **events**
  on the active span and in the bounded :class:`FlightRecorder`.

Design constraints mirror the metrics registry's:

1. **Resolved once.** Components capture ``get_tracer()`` at
   construction; a disabled tracer hands back shared no-op spans whose
   methods do nothing.
2. **Free when off.** ``Tracer(enabled=False)`` (the default) makes
   ``span()``/``event()`` a single flag check; no allocation, no
   clock reads.
3. **Deterministic export.** Span ids are *content-derived* — a hash
   of ``(trace_id, parent_id, name, key)`` where ``key`` is a
   backend-invariant coordinate (global execution index, frame index,
   round index) — so serial, thread, and process runs of the same
   seed produce byte-identical Chrome exports under a pinned clock
   (:class:`FixedClock`). Allocation order never leaks into the tree.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SpanContext", "SpanRecord", "SpanRecorder", "TraceLog",
    "FlightRecorder", "Tracer", "FixedClock", "NULL_TRACER",
    "get_tracer", "set_tracer", "enable_tracing", "disable_tracing",
    "derive_trace_id",
]

Clock = Callable[[], float]


class FixedClock:
    """A picklable constant clock: pins time itself.

    Tier-1 determinism tests install ``Tracer(clock=FixedClock())`` so
    every span gets identical timestamps on every backend — including
    worker processes, which receive the clock over the spawn channel
    (hence a class, not a lambda: it must survive pickling).
    """

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def __call__(self) -> float:
        return self.value

    def __getstate__(self):
        return self.value

    def __setstate__(self, state):
        self.value = state


def derive_trace_id(*labels: object) -> str:
    """A deterministic 16-hex-char trace id from a label path."""
    digest = hashlib.blake2b(
        "|".join(repr(label) for label in labels).encode("utf-8"),
        digest_size=8)
    return digest.hexdigest()


def _span_id(trace_id: str, parent_id: Optional[str], name: str,
             key: str) -> str:
    """Content-derived span id: identical coordinates ⇒ identical id,
    on every backend, in every process."""
    digest = hashlib.blake2b(
        f"{trace_id}|{parent_id or ''}|{name}|{key}".encode("utf-8"),
        digest_size=8)
    return digest.hexdigest()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable part of a span: enough to parent a child
    anywhere — another thread, another process, the far side of the
    simulated network."""

    trace_id: str
    span_id: str

    def as_tuple(self) -> Tuple[str, str]:
        return (self.trace_id, self.span_id)


@dataclass
class SpanRecord:
    """One completed span (pure data: pickles across worker pipes)."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    key: str
    start: float
    end: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    events: List[Dict[str, object]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def sort_key(self) -> Tuple:
        """Canonical sibling order: chronological under a real clock,
        (name, key) under a pinned one — backend-invariant either way."""
        return (self.start, self.end, self.name, self.key, self.span_id)

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "key": self.key,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "events": [dict(event) for event in self.events],
        }


class _ActiveSpan:
    """Context-manager handle over an in-flight :class:`SpanRecord`."""

    __slots__ = ("_recorder", "record")

    def __init__(self, recorder: "SpanRecorder", record: SpanRecord):
        self._recorder = recorder
        self.record = record

    @property
    def context(self) -> SpanContext:
        return self.record.context()

    def set(self, **attrs) -> "_ActiveSpan":
        self.record.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        self._recorder.event(name, _span=self.record, **attrs)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, *exc) -> None:
        self._recorder._finish(self.record)


class _NullSpan:
    """Shared do-nothing span handle (disabled tracer / recorder)."""

    __slots__ = ()
    record = None
    context = None

    def set(self, **attrs) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullRecorder:
    """Shared do-nothing recorder (tracing disabled)."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, key: object = None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def take(self) -> Tuple:
        return ()


NULL_RECORDER = _NullRecorder()


class FlightRecorder:
    """A bounded, deterministic ring buffer of recent trace activity.

    Every span start/end and every event lands here; when a chaos
    round grades *failed* or an invariant fires, the platform dumps
    the ring into the snapshot — the last-moments black box.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = max(1, capacity)
        self.total = 0
        self._ring: List[Dict[str, object]] = []
        self._cursor = 0

    def record(self, entry: Dict[str, object]) -> None:
        self.total += 1
        if len(self._ring) < self.capacity:
            self._ring.append(entry)
        else:
            self._ring[self._cursor] = entry
            self._cursor = (self._cursor + 1) % self.capacity

    @property
    def dropped(self) -> int:
        return max(0, self.total - self.capacity)

    def events(self) -> List[Dict[str, object]]:
        """The retained events, oldest first."""
        return self._ring[self._cursor:] + self._ring[:self._cursor]

    def slice(self, ts_from: Optional[float] = None,
              ts_to: Optional[float] = None,
              limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Retained events inside ``[ts_from, ts_to]``, oldest first.

        Either bound may be ``None`` (open end); ``limit`` keeps only
        the **newest** ``limit`` matches — the shape incident evidence
        wants (the last moments before an alert fired). Events are
        copied, so mutating the slice never corrupts the ring.
        """
        matched = [dict(event) for event in self.events()
                   if (ts_from is None or event.get("ts", 0.0) >= ts_from)
                   and (ts_to is None or event.get("ts", 0.0) <= ts_to)]
        if limit is not None and limit >= 0:
            matched = matched[len(matched) - min(limit, len(matched)):]
        return matched

    def dump(self, reason: str = "") -> Dict[str, object]:
        return {
            "reason": reason,
            "capacity": self.capacity,
            "total": self.total,
            "dropped": self.dropped,
            "events": [dict(event) for event in self.events()],
        }

    def clear(self) -> None:
        self.total = 0
        self._ring = []
        self._cursor = 0


class TraceLog:
    """The per-run store of completed spans (bounded, counts drops)."""

    def __init__(self, max_spans: int = 250_000):
        self.max_spans = max_spans
        self.spans: List[SpanRecord] = []
        self.dropped = 0

    def add(self, span: SpanRecord) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    def extend(self, spans: Sequence[SpanRecord]) -> None:
        for span in spans:
            self.add(span)

    def __len__(self) -> int:
        return len(self.spans)

    def clear(self) -> None:
        self.spans = []
        self.dropped = 0


class SpanRecorder:
    """Span mechanics for one single-threaded recording site.

    The coordinator's :class:`Tracer` is one; each shard gets its own
    (via :meth:`Tracer.recorder`), rooted at the remote parent context
    the backend handed it, so worker-side spans parent correctly
    without any cross-thread state.
    """

    enabled = True

    def __init__(self, clock: Clock, trace_id: str,
                 parent: Optional[SpanContext] = None,
                 flight: Optional[FlightRecorder] = None):
        self._clock = clock
        self._trace_id = parent.trace_id if parent else trace_id
        self._base = parent
        self._flight = flight
        self._stack: List[SpanRecord] = []
        self._done: List[SpanRecord] = []
        self._occurrence: Dict[Tuple[Optional[str], str], int] = {}

    # -- recording ---------------------------------------------------------

    def _parent_id(self) -> Optional[str]:
        if self._stack:
            return self._stack[-1].span_id
        if self._base is not None:
            return self._base.span_id
        return None

    def span(self, name: str, key: object = None, **attrs) -> _ActiveSpan:
        """Open a span under the current one (or the remote base).

        ``key`` must be a backend-invariant coordinate when the same
        instrumentation point can run on different shards (global
        execution index, frame index, ...); left ``None``, a per-parent
        occurrence counter is used, which is deterministic only for
        single-threaded coordinator-side recording.
        """
        parent_id = self._parent_id()
        if key is None:
            slot = (parent_id, name)
            key = self._occurrence.get(slot, 0)
            self._occurrence[slot] = key + 1
        key_str = repr(key)
        record = SpanRecord(
            trace_id=self._trace_id,
            span_id=_span_id(self._trace_id, parent_id, name, key_str),
            parent_id=parent_id,
            name=name,
            key=key_str,
            start=self._clock(),
            attrs=dict(attrs),
        )
        self._stack.append(record)
        if self._flight is not None:
            self._flight.record({"ts": record.start, "kind": "span_start",
                                 "name": name, "span_id": record.span_id})
        return _ActiveSpan(self, record)

    def _finish(self, record: SpanRecord) -> None:
        record.end = self._clock()
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        elif record in self._stack:          # pragma: no cover - defensive
            self._stack.remove(record)
        self._done.append(record)
        if self._flight is not None:
            self._flight.record({"ts": record.end, "kind": "span_end",
                                 "name": record.name,
                                 "span_id": record.span_id})

    def event(self, name: str, _span: Optional[SpanRecord] = None,
              **attrs) -> None:
        """Attach a point-in-time event to the active (or given) span;
        it also lands in the flight recorder."""
        target = _span
        if target is None and self._stack:
            target = self._stack[-1]
        entry = {"ts": self._clock(), "name": name, "attrs": dict(attrs)}
        if target is not None:
            target.events.append(entry)
        if self._flight is not None:
            self._flight.record({"ts": entry["ts"], "kind": "event",
                                 "name": name, "attrs": dict(attrs)})

    def current_context(self) -> Optional[SpanContext]:
        if self._stack:
            return self._stack[-1].context()
        return self._base

    def take(self) -> List[SpanRecord]:
        """Hand over the completed spans (shard → coordinator graft)."""
        done, self._done = self._done, []
        return done


class Tracer(SpanRecorder):
    """The process-local tracer: a recorder plus run-level state.

    Mirrors :class:`~repro.obs.registry.Registry`: resolved once at
    component construction, shared no-op handles when disabled, an
    injectable clock for deterministic tests.
    """

    def __init__(self, enabled: bool = False,
                 clock: Optional[Clock] = None,
                 trace_id: str = "trace",
                 flight_capacity: int = 256,
                 max_spans: int = 250_000):
        self.enabled = enabled
        self.clock: Clock = clock or time.perf_counter
        self.log = TraceLog(max_spans=max_spans)
        self.flight = FlightRecorder(flight_capacity) if enabled else None
        super().__init__(self.clock, trace_id, flight=self.flight)

    # -- identity ----------------------------------------------------------

    @property
    def trace_id(self) -> str:
        return self._trace_id

    def set_trace_id(self, trace_id: str) -> None:
        """Fix the run's trace id (platforms derive it from the seed so
        exports reproduce)."""
        self._trace_id = trace_id

    # -- recording (no-op fast paths) --------------------------------------

    def span(self, name: str, key: object = None, **attrs):
        if not self.enabled:
            return NULL_SPAN
        return super().span(name, key=key, **attrs)

    def span_at(self, context, name: str, key: object = None, **attrs):
        """Open a span parented to a *remote* context (one that arrived
        over the wire); falls back to a normal span when the context is
        missing (untraced sender)."""
        if not self.enabled:
            return NULL_SPAN
        if context is None:
            return super().span(name, key=key, **attrs)
        if isinstance(context, tuple):
            context = SpanContext(*context)
        base, self._base = self._base, context
        stack, self._stack = self._stack, []
        try:
            handle = super().span(name, key=key, **attrs)
        finally:
            self._base = base
            self._stack = stack
        # The new span is rootless on our stack: push it so children
        # opened inside the ``with`` body parent under it.
        self._stack.append(handle.record)
        return handle

    def event(self, name: str, _span=None, **attrs) -> None:
        if not self.enabled:
            return
        super().event(name, _span=_span, **attrs)

    def _finish(self, record: SpanRecord) -> None:
        super()._finish(record)
        # Completed coordinator-side spans go straight to the log.
        self._done.pop()
        self.log.add(record)

    def current_context(self) -> Optional[SpanContext]:
        if not self.enabled:
            return None
        return super().current_context()

    # -- shard-side recording ----------------------------------------------

    def recorder(self, parent: Optional[SpanContext] = None,
                 ) -> SpanRecorder:
        """A fresh single-threaded recorder rooted at ``parent`` (the
        shape shards use; returns the shared no-op when disabled)."""
        if not self.enabled:
            return NULL_RECORDER
        return SpanRecorder(self.clock, self._trace_id, parent=parent)

    def adopt(self, spans: Sequence[SpanRecord]) -> None:
        """Graft spans recorded elsewhere (threads, worker processes)
        into this tracer's log."""
        if spans:
            self.log.extend(spans)

    # -- export surface ----------------------------------------------------

    def flight_dump(self, reason: str = "") -> Optional[Dict[str, object]]:
        if self.flight is None:
            return None
        return self.flight.dump(reason=reason)

    def spec(self) -> Tuple[bool, Clock]:
        """The picklable (enabled, clock) pair worker processes need to
        reconstruct an equivalent tracer."""
        return (self.enabled, self.clock)

    def summary(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "enabled": self.enabled,
            "trace_id": self._trace_id,
            "spans": len(self.log),
            "spans_dropped": self.log.dropped,
        }
        if self.flight is not None:
            doc["flight_events"] = self.flight.total
        return doc


NULL_TRACER = Tracer(enabled=False)

_default_tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-local tracer every component resolves once."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-local tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def enable_tracing(clock: Optional[Clock] = None,
                   trace_id: str = "trace",
                   flight_capacity: int = 256) -> Tracer:
    """Install (and return) a fresh enabled tracer."""
    tracer = Tracer(enabled=True, clock=clock, trace_id=trace_id,
                    flight_capacity=flight_capacity)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> Tracer:
    """Install (and return) a fresh disabled tracer."""
    tracer = Tracer(enabled=False)
    set_tracer(tracer)
    return tracer
