"""The ``Instrumented`` mixin: namespaced metric handles for components.

A component subclasses :class:`Instrumented`, sets ``obs_namespace``,
and resolves its handles once (usually in ``__init__``)::

    class Hive(Instrumented):
        obs_namespace = "hive"

        def __init__(self, ...):
            self._obs_ingested = self.obs_counter("traces_ingested")
            self._obs_replay = self.obs_timer("phase.replay")

        def ingest(self, trace):
            self._obs_ingested.inc()
            with self._obs_replay.time():
                ...

Handles resolve against the process-local registry *at construction
time*: components built while the registry is disabled get shared
no-op handles and pay nothing at runtime.
"""

from __future__ import annotations

from repro.obs.registry import (
    Counter, Gauge, Histogram, Registry, Timer, get_registry,
)

__all__ = ["Instrumented"]


class Instrumented:
    """Mixin giving a component namespaced access to the registry."""

    #: Prefix for every metric this component registers ("" = none).
    obs_namespace: str = ""

    @property
    def obs(self) -> Registry:
        return get_registry()

    def obs_name(self, name: str) -> str:
        if self.obs_namespace:
            return f"{self.obs_namespace}.{name}"
        return name

    def obs_counter(self, name: str) -> Counter:
        return get_registry().counter(self.obs_name(name))

    def obs_gauge(self, name: str) -> Gauge:
        return get_registry().gauge(self.obs_name(name))

    def obs_histogram(self, name: str, unit: str = "") -> Histogram:
        return get_registry().histogram(self.obs_name(name), unit=unit)

    def obs_timer(self, name: str) -> Timer:
        return get_registry().timer(self.obs_name(name))
